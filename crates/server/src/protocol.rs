//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! This module is the authoritative implementation of the format specified
//! in `docs/protocol.md`. Both sides of the wire use it: the server decodes
//! [`Request`]s and encodes [`Reply`]s, `tsb-client` does the reverse.
//!
//! # Frame layout
//!
//! ```text
//! +--------------+--------------+----------------------------------+
//! | len: u32 LE  | crc: u32 LE  | body (len bytes)                 |
//! +--------------+--------------+----------------------------------+
//! body = request_id: u64 LE | tag: u8 | payload
//! ```
//!
//! `len` counts the body only. A body is at least [`MIN_FRAME_BODY`] bytes
//! (id + tag) and at most [`MAX_FRAME_BODY`]; a length prefix outside that
//! window is a protocol error *before* any allocation happens — the decoder
//! only ever buffers bytes that actually arrived, so a hostile length
//! prefix cannot make it reserve memory (mirroring the WAL's
//! `MAX_RECORD_BODY` guard).
//!
//! `crc` is the CRC-32 of the body ([`tsb_common::checksum::crc32`]).
//! Length prefixes alone cannot keep a TCP stream honest: a duplicated or
//! torn byte sequence occasionally *re-parses* as a valid frame with
//! shifted field boundaries — the network chaos harness produced exactly
//! that, committing a `Put` whose value was a window of wire bytes. The
//! checksum reduces a desynchronized stream to a detectable
//! [`FrameError::BadChecksum`], after which the connection must close and
//! the client retries over a fresh one.
//!
//! Payload encoding reuses `tsb-common`'s [`ByteWriter`]/[`ByteReader`]
//! (little-endian, `u32`-length-prefixed byte strings), so keys, ranges,
//! timestamps, and versions have the same encoding on the wire as on the
//! devices. Trailing bytes after a payload are a protocol error: a frame
//! means exactly one request or reply.
//!
//! # Request ids and pipelining
//!
//! The `request_id` is chosen by the client and echoed verbatim in the
//! reply. A connection may have any number of requests in flight; the
//! server may complete them out of order (it currently answers a drained
//! batch in arrival order, but clients must match on id, not position).
//! Id `0` is reserved for connection-level error replies — a frame the
//! server could not attribute to a request (malformed framing).

use std::fmt;

use tsb_common::checksum::crc32;
use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbError, TxnId, Version};

/// Largest body a frame may declare. Larger prefixes are rejected without
/// allocating. Big enough for any single page-sized value plus slack; small
/// enough that one hostile connection cannot balloon the server.
pub const MAX_FRAME_BODY: usize = 16 << 20;

/// Smallest meaningful body: an 8-byte request id plus a 1-byte tag.
pub const MIN_FRAME_BODY: usize = 9;

/// Wire codes minted by the protocol layer itself (engine faults travel as
/// [`TsbError::wire_code`], which stays below 20; the connection-lifecycle
/// codes [`CODE_OVERLOADED`]/[`CODE_DEADLINE_EXCEEDED`] sit above these).
pub const CODE_MALFORMED: u8 = 20;
/// See [`CODE_MALFORMED`].
pub const CODE_OVERSIZED: u8 = 21;
/// See [`CODE_MALFORMED`].
pub const CODE_UNKNOWN_VERB: u8 = 22;
/// `TsbError::ReadOnly`'s wire code, named here because a failover client
/// dispatches on it over the wire (a write answered `read-only` means the
/// endpoint is a replica or a demoted primary — go find the promoted one).
pub const CODE_READ_ONLY: u8 = 15;
/// `TsbError::StaleEpoch`'s wire code, named here because the replication
/// runner dispatches on it over the wire (a rejected `Subscribe` from a
/// demoted primary must trigger a re-bootstrap, not a blind retry).
pub const CODE_STALE_EPOCH: u8 = 16;
/// The server shed this connection at accept time (`--max-conns` reached).
/// Recoverable: retry another endpoint or back off — nothing was executed.
pub const CODE_OVERLOADED: u8 = 23;
/// Minted client-side when a per-operation deadline expires before the
/// reply arrives. The operation may or may not have taken effect.
pub const CODE_DEADLINE_EXCEEDED: u8 = 24;

/// A framing or parsing failure. Distinct from [`TsbError`] because the
/// receiving side must react differently: [`FrameError::UnknownVerb`]
/// leaves the stream synchronized (the frame was well-formed), while the
/// other two mean the byte stream itself can no longer be trusted and the
/// connection must close.
#[derive(Debug)]
pub enum FrameError {
    /// A length prefix above [`MAX_FRAME_BODY`] or below [`MIN_FRAME_BODY`].
    Oversized {
        /// The declared body length.
        declared: u64,
    },
    /// A body that does not parse as exactly one request/reply.
    Malformed(String),
    /// A frame whose body does not match its header checksum: the byte
    /// stream is desynchronized (duplicated/torn bytes) or corrupt.
    BadChecksum {
        /// The checksum the header declared.
        declared: u32,
        /// The checksum of the bytes that arrived.
        actual: u32,
    },
    /// A well-formed frame whose verb tag this side does not know.
    UnknownVerb(u8),
}

impl FrameError {
    /// The wire code an error reply carries for this failure.
    pub fn wire_code(&self) -> u8 {
        match self {
            FrameError::Oversized { .. } => CODE_OVERSIZED,
            FrameError::Malformed(_) | FrameError::BadChecksum { .. } => CODE_MALFORMED,
            FrameError::UnknownVerb(_) => CODE_UNKNOWN_VERB,
        }
    }

    /// Whether the byte stream is still frame-synchronized after this
    /// error (only an unknown verb inside a well-formed frame is).
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::UnknownVerb(_))
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared } => write!(
                f,
                "frame body of {declared} bytes is outside [{MIN_FRAME_BODY}, {MAX_FRAME_BODY}]"
            ),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::BadChecksum { declared, actual } => write!(
                f,
                "frame checksum mismatch (header {declared:#010x}, body {actual:#010x}): \
                 byte stream desynchronized"
            ),
            FrameError::UnknownVerb(tag) => write!(f, "unknown verb tag {tag}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for TsbError {
    fn from(e: FrameError) -> Self {
        TsbError::corruption(format!("protocol: {e}"))
    }
}

/// One client request. Verbs mirror the `ConcurrentTsb` read/write surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Insert a new current version of `key`; acknowledged only once the
    /// commit is durable under the server's fsync policy.
    Put {
        /// Key to write.
        key: Key,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Write a tombstone for `key` (same durability contract as `Put`).
    Delete {
        /// Key to delete.
        key: Key,
    },
    /// Read the current value of `key`.
    Get {
        /// Key to read.
        key: Key,
    },
    /// Read the value of `key` as of a past timestamp.
    GetAsOf {
        /// Key to read.
        key: Key,
        /// As-of time.
        as_of: Timestamp,
    },
    /// Range scan; `as_of: None` scans the current database.
    Range {
        /// Key range to scan.
        range: KeyRange,
        /// As-of time, or `None` for current.
        as_of: Option<Timestamp>,
    },
    /// Version history of `key` within a commit-time window.
    History {
        /// Key whose history to read.
        key: Key,
        /// Commit-time window.
        window: TimeRange,
    },
    /// Begin a multi-key transaction owned by this connection.
    TxnBegin,
    /// Buffer a write inside a transaction (`value: None` = delete).
    TxnWrite {
        /// Transaction id from `TxnBegin`.
        txn: TxnId,
        /// Key to write.
        key: Key,
        /// New value, or `None` for a tombstone.
        value: Option<Vec<u8>>,
    },
    /// Commit a transaction; acknowledged only once durable.
    TxnCommit {
        /// Transaction id.
        txn: TxnId,
    },
    /// Abort a transaction, erasing its uncommitted writes.
    TxnAbort {
        /// Transaction id.
        txn: TxnId,
    },
    /// Liveness probe; the reply carries the server's install fence.
    Ping,
    /// Ask the server to stop accepting connections and exit cleanly.
    Shutdown,
    /// Ask which role this server plays (primary or replica) and how many
    /// shards it runs.
    Role,
    /// Pull the next batch of redo-log records for replication (the
    /// subscriber's cursor doubles as the cumulative ACK: asking for
    /// records after `from_lsn` acknowledges everything at or before it).
    Subscribe {
        /// The subscriber's resume cursor: ship records with LSN >
        /// `from_lsn`.
        from_lsn: u64,
        /// The subscriber's WORM device length; the reply carries the
        /// historical bytes past it that the batch's fences reference.
        worm_have: u64,
        /// Soft cap on record bytes in the reply (the server clamps it so
        /// the reply fits a frame).
        max_bytes: u64,
        /// The promotion epoch the subscriber believes the primary is at
        /// (learned from `BaseInfo` at bootstrap). A subscriber presenting
        /// an *older* epoch is a demoted former primary with diverged
        /// history: the server rejects it with `StaleEpoch` (code 16) and
        /// it must re-bootstrap. `0` means "unknown" (first contact) and
        /// is always accepted.
        epoch: u64,
    },
    /// Capture a replication base image on the primary and learn its
    /// shape. The image is cached on this connection; fetch its contents
    /// with `FetchBasePages` / `FetchBaseWorm`.
    FetchBase,
    /// Fetch a chunk of the captured base's pages, starting at index
    /// `start`.
    FetchBasePages {
        /// Index of the first page to return (into the base's page list).
        start: u64,
        /// Soft cap on page bytes in the reply.
        max_bytes: u64,
    },
    /// Fetch a chunk of the captured base's WORM image.
    FetchBaseWorm {
        /// Byte offset into the base's WORM image.
        offset: u64,
        /// Soft cap on bytes in the reply.
        max_bytes: u64,
    },
    /// Ask a replica for its replication progress.
    ReplicaStatus,
    /// Promote a replica to primary: stop replicating, recover to the
    /// newest shipped fence, persist a bumped promotion epoch, and start
    /// accepting writes. Idempotent on a server that is already primary.
    Promote,
}

const REQ_PUT: u8 = 1;
const REQ_DELETE: u8 = 2;
const REQ_GET: u8 = 3;
const REQ_GET_AS_OF: u8 = 4;
const REQ_RANGE: u8 = 5;
const REQ_HISTORY: u8 = 6;
const REQ_TXN_BEGIN: u8 = 7;
const REQ_TXN_WRITE: u8 = 8;
const REQ_TXN_COMMIT: u8 = 9;
const REQ_TXN_ABORT: u8 = 10;
const REQ_PING: u8 = 11;
const REQ_SHUTDOWN: u8 = 12;
const REQ_ROLE: u8 = 13;
const REQ_SUBSCRIBE: u8 = 14;
const REQ_FETCH_BASE: u8 = 15;
const REQ_FETCH_BASE_PAGES: u8 = 16;
const REQ_FETCH_BASE_WORM: u8 = 17;
const REQ_REPLICA_STATUS: u8 = 18;
const REQ_PROMOTE: u8 = 19;

/// One server reply. The tag makes replies self-describing, so a client
/// can park out-of-order responses before knowing which request they
/// answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The request failed; `code` is [`TsbError::wire_code`] or one of the
    /// protocol-layer `CODE_*` constants.
    Error {
        /// Stable error class (see `TsbError::wire_code_name`).
        code: u8,
        /// Human-readable description.
        message: String,
    },
    /// A durable write's commit timestamp (`put`, `delete`, `txn_commit`).
    Committed {
        /// Commit timestamp.
        ts: Timestamp,
    },
    /// A point read's result (`get`, `get_as_of`); `None` = no live value.
    Value {
        /// The value, if the key has one at the requested time.
        value: Option<Vec<u8>>,
    },
    /// A range scan's result.
    Rows {
        /// Key/value pairs in key order.
        rows: Vec<(Key, Vec<u8>)>,
    },
    /// A history query's result.
    Versions {
        /// Matching versions, oldest first.
        versions: Vec<Version>,
    },
    /// A new transaction's id.
    Txn {
        /// The transaction id to use in `TxnWrite`/`TxnCommit`/`TxnAbort`.
        txn: TxnId,
    },
    /// Success with nothing to report (`txn_write`, `txn_abort`,
    /// `shutdown`).
    Unit,
    /// Reply to `Ping`.
    Pong {
        /// The server's install fence at reply time.
        last_installed: Timestamp,
    },
    /// Reply to `Role`.
    RoleInfo {
        /// `true` when this server accepts writes.
        primary: bool,
        /// Shard count (1 on unsharded primaries and on replicas).
        shards: u32,
        /// The server's promotion epoch (see `Request::Subscribe::epoch`).
        /// Clients comparing two claimed primaries must believe the one
        /// with the higher epoch.
        epoch: u64,
        /// The newest durable position in this server's log (0 when it has
        /// no single durable log: in-memory or sharded). On a replica: the
        /// applied fence LSN. A no-loss promotion drill quiesces writers,
        /// reads this off the *primary*, and waits until the replica's
        /// `applied_lsn` reaches it — the replica's own lag counters are
        /// relative to the watermark it last polled and can read zero
        /// while newer durable records exist that never shipped.
        durable_lsn: u64,
    },
    /// Reply to `Subscribe`: one shipped batch (see
    /// `tsb_core::ShippedBatch` for field semantics).
    Batch {
        /// The subscriber's cursor predates the retained log: re-base.
        needs_rebase: bool,
        /// The primary's durable watermark at poll time.
        durable_lsn: u64,
        /// Device offset at which `worm` starts.
        worm_start: u64,
        /// Historical bytes the batch's fences reference.
        worm: Vec<u8>,
        /// Encoded record bodies, contiguous LSNs.
        records: Vec<Vec<u8>>,
    },
    /// Reply to `FetchBase`: the shape of the just-captured base image.
    BaseInfo {
        /// LSN of the base's checkpoint fence.
        checkpoint_lsn: u64,
        /// The checkpoint record's encoded body.
        checkpoint: Vec<u8>,
        /// Number of pages in the image (fetch via `FetchBasePages`).
        page_count: u64,
        /// Total WORM image length (fetch via `FetchBaseWorm`).
        worm_len: u64,
        /// The primary's page size.
        page_size: u64,
        /// The primary's WORM sector size.
        worm_sector_size: u64,
        /// The primary's promotion epoch at capture time. The replica
        /// persists it and presents it on every later `Subscribe`.
        epoch: u64,
    },
    /// Reply to `FetchBasePages`: a chunk of the base's pages.
    BasePages {
        /// `(page id, image)` pairs starting at the requested index.
        pages: Vec<(u64, Vec<u8>)>,
        /// Whether this chunk reaches the end of the page list.
        done: bool,
    },
    /// Reply to `FetchBaseWorm`: a chunk of the base's WORM image.
    BaseWorm {
        /// Bytes starting at the requested offset.
        bytes: Vec<u8>,
        /// Whether this chunk reaches the end of the image.
        done: bool,
    },
    /// Reply to `ReplicaStatus` (see `tsb_core::ReplicaStatus`).
    ReplicaStatusInfo {
        /// Whether the replica serves reads yet.
        serving: bool,
        /// LSN of the newest installed fence.
        applied_lsn: u64,
        /// LSN of the newest record in the replica's local log — the
        /// freshness signal promotion tooling compares across replicas.
        received_lsn: u64,
        /// The primary's durable watermark as last seen.
        source_durable_lsn: u64,
        /// Full applied-vs-durable delta (records ≡ LSNs).
        lag_records: u64,
        /// Durable-on-primary records not yet in the local log (ship lag);
        /// the rest of `lag_records` is received-but-unapplied.
        ship_lag_records: u64,
        /// Milliseconds since last progress (0 when caught up).
        lag_ms: u64,
    },
    /// Reply to `Promote`: the server is now primary at this epoch.
    Promoted {
        /// The (possibly just bumped) promotion epoch.
        epoch: u64,
    },
}

const REP_ERROR: u8 = 0;
const REP_COMMITTED: u8 = 1;
const REP_VALUE: u8 = 2;
const REP_ROWS: u8 = 3;
const REP_VERSIONS: u8 = 4;
const REP_TXN: u8 = 5;
const REP_UNIT: u8 = 6;
const REP_PONG: u8 = 7;
const REP_ROLE_INFO: u8 = 8;
const REP_BATCH: u8 = 9;
const REP_BASE_INFO: u8 = 10;
const REP_BASE_PAGES: u8 = 11;
const REP_BASE_WORM: u8 = 12;
const REP_REPLICA_STATUS: u8 = 13;
const REP_PROMOTED: u8 = 14;

/// Encodes one request as a complete frame (length prefix included).
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(32);
    w.put_u64(id);
    match req {
        Request::Put { key, value } => {
            w.put_u8(REQ_PUT);
            w.put_key(key);
            w.put_bytes(value);
        }
        Request::Delete { key } => {
            w.put_u8(REQ_DELETE);
            w.put_key(key);
        }
        Request::Get { key } => {
            w.put_u8(REQ_GET);
            w.put_key(key);
        }
        Request::GetAsOf { key, as_of } => {
            w.put_u8(REQ_GET_AS_OF);
            w.put_key(key);
            w.put_timestamp(*as_of);
        }
        Request::Range { range, as_of } => {
            w.put_u8(REQ_RANGE);
            w.put_key_range(range);
            match as_of {
                Some(ts) => {
                    w.put_u8(1);
                    w.put_timestamp(*ts);
                }
                None => w.put_u8(0),
            }
        }
        Request::History { key, window } => {
            w.put_u8(REQ_HISTORY);
            w.put_key(key);
            w.put_time_range(window);
        }
        Request::TxnBegin => w.put_u8(REQ_TXN_BEGIN),
        Request::TxnWrite { txn, key, value } => {
            w.put_u8(REQ_TXN_WRITE);
            w.put_u64(txn.0);
            w.put_key(key);
            match value {
                Some(v) => {
                    w.put_u8(1);
                    w.put_bytes(v);
                }
                None => w.put_u8(0),
            }
        }
        Request::TxnCommit { txn } => {
            w.put_u8(REQ_TXN_COMMIT);
            w.put_u64(txn.0);
        }
        Request::TxnAbort { txn } => {
            w.put_u8(REQ_TXN_ABORT);
            w.put_u64(txn.0);
        }
        Request::Ping => w.put_u8(REQ_PING),
        Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
        Request::Role => w.put_u8(REQ_ROLE),
        Request::Subscribe {
            from_lsn,
            worm_have,
            max_bytes,
            epoch,
        } => {
            w.put_u8(REQ_SUBSCRIBE);
            w.put_u64(*from_lsn);
            w.put_u64(*worm_have);
            w.put_u64(*max_bytes);
            w.put_u64(*epoch);
        }
        Request::FetchBase => w.put_u8(REQ_FETCH_BASE),
        Request::FetchBasePages { start, max_bytes } => {
            w.put_u8(REQ_FETCH_BASE_PAGES);
            w.put_u64(*start);
            w.put_u64(*max_bytes);
        }
        Request::FetchBaseWorm { offset, max_bytes } => {
            w.put_u8(REQ_FETCH_BASE_WORM);
            w.put_u64(*offset);
            w.put_u64(*max_bytes);
        }
        Request::ReplicaStatus => w.put_u8(REQ_REPLICA_STATUS),
        Request::Promote => w.put_u8(REQ_PROMOTE),
    }
    frame(w.into_vec())
}

/// Encodes one reply as a complete frame (length prefix included).
pub fn encode_reply(id: u64, reply: &Reply) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(32);
    w.put_u64(id);
    match reply {
        Reply::Error { code, message } => {
            w.put_u8(REP_ERROR);
            w.put_u8(*code);
            w.put_bytes(message.as_bytes());
        }
        Reply::Committed { ts } => {
            w.put_u8(REP_COMMITTED);
            w.put_timestamp(*ts);
        }
        Reply::Value { value } => {
            w.put_u8(REP_VALUE);
            match value {
                Some(v) => {
                    w.put_u8(1);
                    w.put_bytes(v);
                }
                None => w.put_u8(0),
            }
        }
        Reply::Rows { rows } => {
            w.put_u8(REP_ROWS);
            w.put_u32(rows.len() as u32);
            for (key, value) in rows {
                w.put_key(key);
                w.put_bytes(value);
            }
        }
        Reply::Versions { versions } => {
            w.put_u8(REP_VERSIONS);
            w.put_u32(versions.len() as u32);
            for v in versions {
                w.put_version(v);
            }
        }
        Reply::Txn { txn } => {
            w.put_u8(REP_TXN);
            w.put_u64(txn.0);
        }
        Reply::Unit => w.put_u8(REP_UNIT),
        Reply::Pong { last_installed } => {
            w.put_u8(REP_PONG);
            w.put_timestamp(*last_installed);
        }
        Reply::RoleInfo {
            primary,
            shards,
            epoch,
            durable_lsn,
        } => {
            w.put_u8(REP_ROLE_INFO);
            w.put_u8(u8::from(*primary));
            w.put_u32(*shards);
            w.put_u64(*epoch);
            w.put_u64(*durable_lsn);
        }
        Reply::Batch {
            needs_rebase,
            durable_lsn,
            worm_start,
            worm,
            records,
        } => {
            w.put_u8(REP_BATCH);
            w.put_u8(u8::from(*needs_rebase));
            w.put_u64(*durable_lsn);
            w.put_u64(*worm_start);
            w.put_bytes(worm);
            w.put_u32(records.len() as u32);
            for body in records {
                w.put_bytes(body);
            }
        }
        Reply::BaseInfo {
            checkpoint_lsn,
            checkpoint,
            page_count,
            worm_len,
            page_size,
            worm_sector_size,
            epoch,
        } => {
            w.put_u8(REP_BASE_INFO);
            w.put_u64(*checkpoint_lsn);
            w.put_bytes(checkpoint);
            w.put_u64(*page_count);
            w.put_u64(*worm_len);
            w.put_u64(*page_size);
            w.put_u64(*worm_sector_size);
            w.put_u64(*epoch);
        }
        Reply::BasePages { pages, done } => {
            w.put_u8(REP_BASE_PAGES);
            w.put_u32(pages.len() as u32);
            for (page, bytes) in pages {
                w.put_u64(*page);
                w.put_bytes(bytes);
            }
            w.put_u8(u8::from(*done));
        }
        Reply::BaseWorm { bytes, done } => {
            w.put_u8(REP_BASE_WORM);
            w.put_bytes(bytes);
            w.put_u8(u8::from(*done));
        }
        Reply::ReplicaStatusInfo {
            serving,
            applied_lsn,
            received_lsn,
            source_durable_lsn,
            lag_records,
            ship_lag_records,
            lag_ms,
        } => {
            w.put_u8(REP_REPLICA_STATUS);
            w.put_u8(u8::from(*serving));
            w.put_u64(*applied_lsn);
            w.put_u64(*received_lsn);
            w.put_u64(*source_durable_lsn);
            w.put_u64(*lag_records);
            w.put_u64(*ship_lag_records);
            w.put_u64(*lag_ms);
        }
        Reply::Promoted { epoch } => {
            w.put_u8(REP_PROMOTED);
            w.put_u64(*epoch);
        }
    }
    frame(w.into_vec())
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!((MIN_FRAME_BODY..=MAX_FRAME_BODY).contains(&body.len()));
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Parses a frame body into `(request_id, Request)`.
pub fn parse_request(body: &[u8]) -> Result<(u64, Request), FrameError> {
    let mut r = ByteReader::new(body);
    let id = r.get_u64().map_err(malformed)?;
    let tag = r.get_u8().map_err(malformed)?;
    let req = match tag {
        REQ_PUT => Request::Put {
            key: r.get_key().map_err(malformed)?,
            value: r.get_bytes().map_err(malformed)?,
        },
        REQ_DELETE => Request::Delete {
            key: r.get_key().map_err(malformed)?,
        },
        REQ_GET => Request::Get {
            key: r.get_key().map_err(malformed)?,
        },
        REQ_GET_AS_OF => Request::GetAsOf {
            key: r.get_key().map_err(malformed)?,
            as_of: r.get_timestamp().map_err(malformed)?,
        },
        REQ_RANGE => {
            let range = r.get_key_range().map_err(malformed)?;
            let as_of = match r.get_u8().map_err(malformed)? {
                0 => None,
                1 => Some(r.get_timestamp().map_err(malformed)?),
                t => return Err(FrameError::Malformed(format!("invalid as-of tag {t}"))),
            };
            Request::Range { range, as_of }
        }
        REQ_HISTORY => Request::History {
            key: r.get_key().map_err(malformed)?,
            window: r.get_time_range().map_err(malformed)?,
        },
        REQ_TXN_BEGIN => Request::TxnBegin,
        REQ_TXN_WRITE => {
            let txn = TxnId(r.get_u64().map_err(malformed)?);
            let key = r.get_key().map_err(malformed)?;
            let value = match r.get_u8().map_err(malformed)? {
                0 => None,
                1 => Some(r.get_bytes().map_err(malformed)?),
                t => return Err(FrameError::Malformed(format!("invalid value tag {t}"))),
            };
            Request::TxnWrite { txn, key, value }
        }
        REQ_TXN_COMMIT => Request::TxnCommit {
            txn: TxnId(r.get_u64().map_err(malformed)?),
        },
        REQ_TXN_ABORT => Request::TxnAbort {
            txn: TxnId(r.get_u64().map_err(malformed)?),
        },
        REQ_PING => Request::Ping,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_ROLE => Request::Role,
        REQ_SUBSCRIBE => Request::Subscribe {
            from_lsn: r.get_u64().map_err(malformed)?,
            worm_have: r.get_u64().map_err(malformed)?,
            max_bytes: r.get_u64().map_err(malformed)?,
            epoch: r.get_u64().map_err(malformed)?,
        },
        REQ_FETCH_BASE => Request::FetchBase,
        REQ_FETCH_BASE_PAGES => Request::FetchBasePages {
            start: r.get_u64().map_err(malformed)?,
            max_bytes: r.get_u64().map_err(malformed)?,
        },
        REQ_FETCH_BASE_WORM => Request::FetchBaseWorm {
            offset: r.get_u64().map_err(malformed)?,
            max_bytes: r.get_u64().map_err(malformed)?,
        },
        REQ_REPLICA_STATUS => Request::ReplicaStatus,
        REQ_PROMOTE => Request::Promote,
        other => return Err(FrameError::UnknownVerb(other)),
    };
    expect_exhausted(&r)?;
    Ok((id, req))
}

/// Parses a frame body into `(request_id, Reply)`.
pub fn parse_reply(body: &[u8]) -> Result<(u64, Reply), FrameError> {
    let mut r = ByteReader::new(body);
    let id = r.get_u64().map_err(malformed)?;
    let tag = r.get_u8().map_err(malformed)?;
    let reply = match tag {
        REP_ERROR => {
            let code = r.get_u8().map_err(malformed)?;
            let message = String::from_utf8_lossy(&r.get_bytes().map_err(malformed)?).into_owned();
            Reply::Error { code, message }
        }
        REP_COMMITTED => Reply::Committed {
            ts: r.get_timestamp().map_err(malformed)?,
        },
        REP_VALUE => Reply::Value {
            value: match r.get_u8().map_err(malformed)? {
                0 => None,
                1 => Some(r.get_bytes().map_err(malformed)?),
                t => return Err(FrameError::Malformed(format!("invalid value tag {t}"))),
            },
        },
        REP_ROWS => {
            let count = r.get_u32().map_err(malformed)? as usize;
            // The count is hostile input: cap the pre-allocation by what
            // the body could possibly hold (a row is ≥ 8 bytes of length
            // prefixes), and let truncation surface naturally.
            let mut rows = Vec::with_capacity(count.min(body.len() / 8 + 1));
            for _ in 0..count {
                let key = r.get_key().map_err(malformed)?;
                let value = r.get_bytes().map_err(malformed)?;
                rows.push((key, value));
            }
            Reply::Rows { rows }
        }
        REP_VERSIONS => {
            let count = r.get_u32().map_err(malformed)? as usize;
            let mut versions = Vec::with_capacity(count.min(body.len() / 8 + 1));
            for _ in 0..count {
                versions.push(r.get_version().map_err(malformed)?);
            }
            Reply::Versions { versions }
        }
        REP_TXN => Reply::Txn {
            txn: TxnId(r.get_u64().map_err(malformed)?),
        },
        REP_UNIT => Reply::Unit,
        REP_PONG => Reply::Pong {
            last_installed: r.get_timestamp().map_err(malformed)?,
        },
        REP_ROLE_INFO => Reply::RoleInfo {
            primary: parse_bool(&mut r)?,
            shards: r.get_u32().map_err(malformed)?,
            epoch: r.get_u64().map_err(malformed)?,
            durable_lsn: r.get_u64().map_err(malformed)?,
        },
        REP_BATCH => {
            let needs_rebase = parse_bool(&mut r)?;
            let durable_lsn = r.get_u64().map_err(malformed)?;
            let worm_start = r.get_u64().map_err(malformed)?;
            let worm = r.get_bytes().map_err(malformed)?;
            let count = r.get_u32().map_err(malformed)? as usize;
            let mut records = Vec::with_capacity(count.min(body.len() / 8 + 1));
            for _ in 0..count {
                records.push(r.get_bytes().map_err(malformed)?);
            }
            Reply::Batch {
                needs_rebase,
                durable_lsn,
                worm_start,
                worm,
                records,
            }
        }
        REP_BASE_INFO => Reply::BaseInfo {
            checkpoint_lsn: r.get_u64().map_err(malformed)?,
            checkpoint: r.get_bytes().map_err(malformed)?,
            page_count: r.get_u64().map_err(malformed)?,
            worm_len: r.get_u64().map_err(malformed)?,
            page_size: r.get_u64().map_err(malformed)?,
            worm_sector_size: r.get_u64().map_err(malformed)?,
            epoch: r.get_u64().map_err(malformed)?,
        },
        REP_BASE_PAGES => {
            let count = r.get_u32().map_err(malformed)? as usize;
            let mut pages = Vec::with_capacity(count.min(body.len() / 8 + 1));
            for _ in 0..count {
                let page = r.get_u64().map_err(malformed)?;
                let bytes = r.get_bytes().map_err(malformed)?;
                pages.push((page, bytes));
            }
            let done = parse_bool(&mut r)?;
            Reply::BasePages { pages, done }
        }
        REP_BASE_WORM => {
            let bytes = r.get_bytes().map_err(malformed)?;
            let done = parse_bool(&mut r)?;
            Reply::BaseWorm { bytes, done }
        }
        REP_REPLICA_STATUS => Reply::ReplicaStatusInfo {
            serving: parse_bool(&mut r)?,
            applied_lsn: r.get_u64().map_err(malformed)?,
            received_lsn: r.get_u64().map_err(malformed)?,
            source_durable_lsn: r.get_u64().map_err(malformed)?,
            lag_records: r.get_u64().map_err(malformed)?,
            ship_lag_records: r.get_u64().map_err(malformed)?,
            lag_ms: r.get_u64().map_err(malformed)?,
        },
        REP_PROMOTED => Reply::Promoted {
            epoch: r.get_u64().map_err(malformed)?,
        },
        other => return Err(FrameError::UnknownVerb(other)),
    };
    expect_exhausted(&r)?;
    Ok((id, reply))
}

fn malformed(e: TsbError) -> FrameError {
    FrameError::Malformed(e.to_string())
}

fn parse_bool(r: &mut ByteReader<'_>) -> Result<bool, FrameError> {
    match r.get_u8().map_err(malformed)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(FrameError::Malformed(format!("invalid bool tag {t}"))),
    }
}

fn expect_exhausted(r: &ByteReader<'_>) -> Result<(), FrameError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(FrameError::Malformed(format!(
            "{} trailing bytes after payload",
            r.remaining()
        )))
    }
}

/// Incremental frame extractor over a TCP byte stream.
///
/// Feed it whatever `read()` returned; [`FrameDecoder::next_frame`] yields
/// complete frame bodies as they become available. Memory is bounded by
/// the bytes actually received (plus one frame), never by what a length
/// prefix *claims* — an oversized or undersized prefix errors before any
/// allocation, and the caller must then drop the connection (the stream
/// can no longer be trusted to be frame-aligned).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` was consumed.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame body, `Ok(None)` if more bytes are
    /// needed. After an `Err` the decoder is poisoned in spirit: the caller
    /// must not keep reading from the same stream.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if !(MIN_FRAME_BODY..=MAX_FRAME_BODY).contains(&declared) {
            return Err(FrameError::Oversized {
                declared: declared as u64,
            });
        }
        if avail.len() < 8 + declared {
            return Ok(None);
        }
        let crc = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        let body = &avail[8..8 + declared];
        let actual = crc32(body);
        if actual != crc {
            return Err(FrameError::BadChecksum {
                declared: crc,
                actual,
            });
        }
        let body = body.to_vec();
        self.pos += 8 + declared;
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::KeyBound;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Put {
                key: Key::from("k"),
                value: b"v".to_vec(),
            },
            Request::Delete {
                key: Key::from_u64(7),
            },
            Request::Get {
                key: Key::from("k"),
            },
            Request::GetAsOf {
                key: Key::from("k"),
                as_of: Timestamp(42),
            },
            Request::Range {
                range: KeyRange::full(),
                as_of: None,
            },
            Request::Range {
                range: KeyRange::new(Key::from("a"), KeyBound::Finite(Key::from("z"))),
                as_of: Some(Timestamp(9)),
            },
            Request::History {
                key: Key::from("k"),
                window: TimeRange::bounded(Timestamp(1), Timestamp(10)),
            },
            Request::TxnBegin,
            Request::TxnWrite {
                txn: TxnId(3),
                key: Key::from("k"),
                value: Some(b"v".to_vec()),
            },
            Request::TxnWrite {
                txn: TxnId(3),
                key: Key::from("k"),
                value: None,
            },
            Request::TxnCommit { txn: TxnId(3) },
            Request::TxnAbort { txn: TxnId(3) },
            Request::Ping,
            Request::Shutdown,
            Request::Role,
            Request::Subscribe {
                from_lsn: 42,
                worm_have: 4096,
                max_bytes: 1 << 20,
                epoch: 3,
            },
            Request::FetchBase,
            Request::FetchBasePages {
                start: 10,
                max_bytes: 1 << 20,
            },
            Request::FetchBaseWorm {
                offset: 8192,
                max_bytes: 1 << 20,
            },
            Request::ReplicaStatus,
            Request::Promote,
        ]
    }

    fn all_replies() -> Vec<Reply> {
        vec![
            Reply::Error {
                code: CODE_MALFORMED,
                message: "bad".into(),
            },
            Reply::Committed { ts: Timestamp(5) },
            Reply::Value { value: None },
            Reply::Value {
                value: Some(b"v".to_vec()),
            },
            Reply::Rows {
                rows: vec![(Key::from("a"), b"1".to_vec()), (Key::from("b"), vec![])],
            },
            Reply::Versions {
                versions: vec![
                    Version::committed("k", Timestamp(1), b"x".to_vec()),
                    Version::tombstone("k", Timestamp(2)),
                ],
            },
            Reply::Txn { txn: TxnId(8) },
            Reply::Unit,
            Reply::Pong {
                last_installed: Timestamp(77),
            },
            Reply::RoleInfo {
                primary: true,
                shards: 4,
                epoch: 2,
                durable_lsn: 4242,
            },
            Reply::Batch {
                needs_rebase: false,
                durable_lsn: 99,
                worm_start: 512,
                worm: vec![3; 32],
                records: vec![vec![1, 2, 3], vec![]],
            },
            Reply::Batch {
                needs_rebase: true,
                durable_lsn: 100,
                worm_start: 0,
                worm: vec![],
                records: vec![],
            },
            Reply::BaseInfo {
                checkpoint_lsn: 7,
                checkpoint: vec![9; 40],
                page_count: 12,
                worm_len: 2048,
                page_size: 4096,
                worm_sector_size: 512,
                epoch: 5,
            },
            Reply::BasePages {
                pages: vec![(0, vec![1; 16]), (5, vec![2; 16])],
                done: false,
            },
            Reply::BaseWorm {
                bytes: vec![4; 64],
                done: true,
            },
            Reply::ReplicaStatusInfo {
                serving: true,
                applied_lsn: 88,
                received_lsn: 89,
                source_durable_lsn: 90,
                lag_records: 2,
                ship_lag_records: 1,
                lag_ms: 15,
            },
            Reply::Promoted { epoch: 9 },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for (i, req) in all_requests().into_iter().enumerate() {
            let id = 1000 + i as u64;
            let frame = encode_request(id, &req);
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            let body = dec.next_frame().unwrap().unwrap();
            let (got_id, got) = parse_request(&body).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got, req);
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn every_reply_round_trips() {
        for (i, reply) in all_replies().into_iter().enumerate() {
            let id = 2000 + i as u64;
            let frame = encode_reply(id, &reply);
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            let body = dec.next_frame().unwrap().unwrap();
            let (got_id, got) = parse_reply(&body).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got, reply);
        }
    }

    #[test]
    fn pipelined_frames_come_out_in_order() {
        let mut wire = Vec::new();
        for (i, req) in all_requests().into_iter().enumerate() {
            wire.extend_from_slice(&encode_request(i as u64, &req));
        }
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time: torn frames at every boundary.
        let mut seen = 0u64;
        for byte in wire {
            dec.feed(&[byte]);
            while let Some(body) = dec.next_frame().unwrap() {
                let (id, _) = parse_request(&body).unwrap();
                assert_eq!(id, seen);
                seen += 1;
            }
        }
        assert_eq!(seen as usize, all_requests().len());
    }

    #[test]
    fn oversized_and_undersized_prefixes_are_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&((MAX_FRAME_BODY as u32 + 1).to_le_bytes()));
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { .. })
        ));

        let mut dec = FrameDecoder::new();
        dec.feed(&8u32.to_le_bytes()); // below MIN_FRAME_BODY
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut frame = encode_request(1, &Request::Ping);
        frame.push(0xEE);
        // Patch the header (length and checksum) so framing is intact and
        // only the payload parse can object to the junk byte.
        let body_len = (frame.len() - 8) as u32;
        frame[..4].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&frame[8..]);
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let body = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            parse_request(&body),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_verb_is_recoverable_others_are_not() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_u8(200);
        let err = parse_request(w.as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::UnknownVerb(200)));
        assert!(err.recoverable());
        assert_eq!(err.wire_code(), CODE_UNKNOWN_VERB);
        assert!(!FrameError::Malformed("x".into()).recoverable());
        assert!(!FrameError::Oversized { declared: 0 }.recoverable());
        assert!(!FrameError::BadChecksum {
            declared: 0,
            actual: 1
        }
        .recoverable());
    }

    #[test]
    fn corrupted_body_fails_the_checksum() {
        let mut frame = encode_request(7, &Request::Ping);
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    /// The chaos proxy's duplicate-partial fault replays a prefix of a
    /// chunk before the chunk itself. Without the checksum this stream
    /// occasionally re-parsed as a *valid* `Put` whose value was a window
    /// of wire bytes — and the server durably committed it. The decoder
    /// must reject the desynchronized stream instead.
    #[test]
    fn duplicated_prefix_cannot_produce_a_clean_frame() {
        let frame = encode_request(
            1,
            &Request::Put {
                key: Key::from_u64(18),
                value: b"fault=duplicate-partial seed=1 i=18".to_vec(),
            },
        );
        // Every possible duplicated prefix of the frame, spliced the way
        // the proxy does it: prefix then the full frame.
        for cut in 1..frame.len() {
            let mut wire = Vec::new();
            wire.extend_from_slice(&frame[..cut]);
            wire.extend_from_slice(&frame);
            let mut dec = FrameDecoder::new();
            dec.feed(&wire);
            // The decoder either errors (desync detected) or yields only
            // bodies that re-parse as the original request — never a
            // mutated one.
            loop {
                match dec.next_frame() {
                    Err(_) => break,
                    Ok(None) => break,
                    Ok(Some(body)) => match parse_request(&body) {
                        Ok((id, req)) => {
                            assert_eq!(id, 1, "cut={cut}: resynced onto a mutated id");
                            assert!(
                                matches!(&req, Request::Put { key, value }
                                    if *key == Key::from_u64(18)
                                        && value == b"fault=duplicate-partial seed=1 i=18"),
                                "cut={cut}: resynced onto a mutated request {req:?}"
                            );
                        }
                        Err(_) => break,
                    },
                }
            }
        }
    }
}
