//! The replica-side replication runner.
//!
//! [`ReplicaRunner`] owns a background thread that keeps a local
//! [`ReplicaEngine`] converged with a primary `tsb-server`:
//!
//! 1. **Bootstrap.** If the replica has no usable local state
//!    ([`ReplicaEngine::needs_base`]), fetch a consistent base image
//!    (`fetch_base` + chunked `fetch_base_pages`/`fetch_base_worm`) and
//!    install it.
//! 2. **Stream.** Pull committed log records with `subscribe` from the
//!    replica's resume cursor and apply each batch. An empty batch means
//!    caught up — sleep briefly and poll again.
//! 3. **Rebase.** A `needs_rebase` reply means a primary checkpoint
//!    discarded the gap the replica still needed; wipe and re-bootstrap
//!    from a fresh base.
//! 4. **Recover.** Any failure — connection loss, a primary restart, an
//!    apply error (crash-equivalent by contract) — drops the connection,
//!    reopens the replica from its own disk, and reconnects with
//!    exponential backoff. The resume cursor is the replica's local
//!    applied prefix, so every retry is idempotent: the primary skips
//!    nothing and the replica skips duplicates.
//!
//! The runner speaks the raw wire protocol over its own [`TcpStream`]
//! rather than going through `tsb-client` (which depends on this crate —
//! using it here would be a dependency cycle).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tsb_common::{TsbError, TsbResult};
use tsb_core::epoch::{persist_epoch, read_epoch};
use tsb_core::{PageId, ReplicaBase, ReplicaEngine, ShippedBatch};

use crate::protocol::{self, FrameDecoder, Reply, Request, CODE_STALE_EPOCH};
use crate::{BASE_CHUNK_MAX_BYTES, SUBSCRIBE_MAX_BYTES};

/// First reconnect delay after a failure.
const BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Backoff ceiling (doubles per consecutive failure up to here).
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Sleep between polls while caught up with the primary.
const IDLE_POLL: Duration = Duration::from_millis(2);
/// Socket read timeout so the thread notices a stop request promptly.
const READ_TIMEOUT: Duration = Duration::from_millis(250);
/// How long a pending reply may go without a single byte of progress
/// before the connection is declared broken. Guards against a link
/// that is alive at the TCP level but silently stalled — e.g. a
/// desynchronized byte stream whose next "frame header" declared a
/// length that never arrives (the checksum can only reject a frame
/// once it completes). The primary answers every request immediately
/// (subscribe is not a long-poll), so a quiet link mid-call is a dead
/// one; reconnecting from the durable cursor is always safe.
const CALL_STALL_LIMIT: Duration = Duration::from_secs(10);

/// Background thread replicating a primary into a [`ReplicaEngine`].
///
/// Dropping the runner (or calling [`ReplicaRunner::stop`]) signals the
/// thread and joins it; the replica keeps serving whatever it has applied.
pub struct ReplicaRunner {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicaRunner {
    /// Starts replicating from the primary at `source` into `replica`.
    pub fn start(replica: ReplicaEngine, source: impl Into<String>) -> ReplicaRunner {
        Self::start_with_epoch(replica, source, Arc::new(AtomicU64::new(0)))
    }

    /// [`ReplicaRunner::start`], publishing the epoch adopted from the
    /// primary (at bootstrap) into `epoch` — the serving server's `Role`
    /// reply reads it from there.
    pub fn start_with_epoch(
        replica: ReplicaEngine,
        source: impl Into<String>,
        epoch: Arc<AtomicU64>,
    ) -> ReplicaRunner {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let source = source.into();
        let handle = std::thread::Builder::new()
            .name("tsb-replica".into())
            .spawn(move || run(&replica, &source, &thread_stop, &epoch))
            .expect("spawn replication thread");
        ReplicaRunner {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread to stop and waits for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicaRunner {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The thread body: sync until an error, then reopen + backoff + retry.
fn run(replica: &ReplicaEngine, source: &str, stop: &Arc<AtomicBool>, epoch: &Arc<AtomicU64>) {
    let mut backoff = BACKOFF_MIN;
    while !stop.load(Ordering::Acquire) {
        match sync_session(replica, source, stop, epoch) {
            // A clean return only happens on a stop request.
            Ok(()) => return,
            Err(_) => {
                // Apply errors are crash-equivalent: recover from the
                // replica's own disk, then reconnect. Harmless after a
                // plain connection drop (the local state is already
                // consistent; reopen just re-reads the log tail).
                let _ = replica.reopen();
                interruptible_sleep(stop, backoff);
                backoff = (backoff * 2).min(BACKOFF_MAX);
            }
        }
    }
}

/// One connection's worth of work: bootstrap if needed, then stream until
/// the connection or an apply fails (returned as an error) or a stop is
/// requested (returned as `Ok`).
fn sync_session(
    replica: &ReplicaEngine,
    source: &str,
    stop: &Arc<AtomicBool>,
    epoch: &Arc<AtomicU64>,
) -> TsbResult<()> {
    let mut conn = Conn::connect(source, Arc::clone(stop))?;
    // The epoch we present on every subscribe: the one persisted in our
    // directory (adopted from the primary at the last bootstrap), or 0 =
    // "unknown" for a fresh directory that has never seen a base.
    let mut our_epoch = read_epoch(replica.dir())?;
    epoch.store(our_epoch, Ordering::SeqCst);
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        if replica.needs_base() {
            our_epoch = bootstrap(replica, &mut conn, epoch)?;
        }
        let from_lsn = replica.resume_lsn().ok_or_else(|| {
            TsbError::internal("replica has a base installed but no resume cursor")
        })?;
        let reply = conn.call(&Request::Subscribe {
            from_lsn,
            worm_have: replica.worm_have(),
            max_bytes: SUBSCRIBE_MAX_BYTES as u64,
            epoch: our_epoch,
        })?;
        let batch = match reply {
            Reply::Batch {
                needs_rebase,
                durable_lsn,
                worm_start,
                worm,
                records,
            } => ShippedBatch {
                needs_rebase,
                durable_lsn,
                worm_start,
                worm,
                records,
            },
            Reply::Error { code, .. } if code == CODE_STALE_EPOCH => {
                // The primary is at a different epoch than the one our
                // local copy was shipped under: our history may have
                // diverged (we are a demoted primary, or we replicated
                // one). The delta stream is useless — re-bootstrap from a
                // fresh base and adopt the primary's epoch.
                our_epoch = bootstrap(replica, &mut conn, epoch)?;
                continue;
            }
            other => return Err(unexpected("subscribe", &other)),
        };
        if batch.needs_rebase {
            // The primary checkpointed past our cursor: our local copy can
            // no longer be extended. Re-bootstrap from a fresh image.
            our_epoch = bootstrap(replica, &mut conn, epoch)?;
            continue;
        }
        // Empty batches still go through apply: they refresh the
        // source-durable watermark the lag accounting reports.
        let caught_up = batch.records.is_empty();
        replica.apply_batch(&batch)?;
        if caught_up {
            interruptible_sleep(stop, IDLE_POLL);
        }
    }
}

/// Fetches a fresh base image, installs it, and durably adopts the
/// primary's epoch. Returns the adopted epoch (also published to the
/// shared slot). The epoch is persisted only *after* the install
/// succeeds: a crash mid-install leaves the marker file, the wipe path
/// re-bootstraps, and an early epoch bump would have been harmless but
/// is avoided anyway (the epoch file must never get ahead of the data
/// it describes).
fn bootstrap(replica: &ReplicaEngine, conn: &mut Conn, epoch: &Arc<AtomicU64>) -> TsbResult<u64> {
    let (base, primary_epoch) = fetch_base(conn)?;
    replica.install_base(&base)?;
    if primary_epoch != 0 {
        persist_epoch(replica.dir(), primary_epoch)?;
    }
    let adopted = read_epoch(replica.dir())?;
    epoch.store(adopted, Ordering::SeqCst);
    Ok(adopted)
}

/// Fetches a complete base image over the connection: the `fetch_base`
/// snapshot descriptor, then every page chunk, then every WORM chunk.
/// Also returns the primary's promotion epoch at capture time.
fn fetch_base(conn: &mut Conn) -> TsbResult<(ReplicaBase, u64)> {
    let (checkpoint_lsn, checkpoint, page_count, page_size, worm_sector_size, primary_epoch) =
        match conn.call(&Request::FetchBase)? {
            Reply::BaseInfo {
                checkpoint_lsn,
                checkpoint,
                page_count,
                worm_len: _,
                page_size,
                worm_sector_size,
                epoch,
            } => (
                checkpoint_lsn,
                checkpoint,
                page_count,
                page_size as usize,
                worm_sector_size as usize,
                epoch,
            ),
            other => return Err(unexpected("fetch_base", &other)),
        };

    let mut pages: Vec<(PageId, Vec<u8>)> = Vec::new();
    loop {
        let reply = conn.call(&Request::FetchBasePages {
            start: pages.len() as u64,
            max_bytes: BASE_CHUNK_MAX_BYTES as u64,
        })?;
        match reply {
            Reply::BasePages { pages: chunk, done } => {
                if chunk.is_empty() && !done {
                    return Err(TsbError::internal(
                        "primary sent an empty page chunk without finishing",
                    ));
                }
                pages.extend(chunk.into_iter().map(|(id, bytes)| (PageId(id), bytes)));
                if done {
                    break;
                }
            }
            other => return Err(unexpected("fetch_base_pages", &other)),
        }
    }
    if pages.len() as u64 != page_count {
        return Err(TsbError::internal(format!(
            "base image advertised {page_count} pages but shipped {}",
            pages.len()
        )));
    }

    let mut worm = Vec::new();
    loop {
        let reply = conn.call(&Request::FetchBaseWorm {
            offset: worm.len() as u64,
            max_bytes: BASE_CHUNK_MAX_BYTES as u64,
        })?;
        match reply {
            Reply::BaseWorm { bytes, done } => {
                worm.extend_from_slice(&bytes);
                if done {
                    break;
                }
                if bytes.is_empty() {
                    return Err(TsbError::internal(
                        "primary sent an empty WORM chunk without finishing",
                    ));
                }
            }
            other => return Err(unexpected("fetch_base_worm", &other)),
        }
    }

    Ok((
        ReplicaBase {
            checkpoint_lsn,
            checkpoint,
            pages,
            worm,
            page_size,
            worm_sector_size,
        },
        primary_epoch,
    ))
}

fn unexpected(verb: &str, reply: &Reply) -> TsbError {
    match reply {
        Reply::Error { code, message } => {
            TsbError::internal(format!("primary rejected {verb} (code {code}): {message}"))
        }
        other => TsbError::internal(format!("unexpected reply to {verb}: {other:?}")),
    }
}

/// Sleeps up to `total`, waking early if a stop is requested.
fn interruptible_sleep(stop: &Arc<AtomicBool>, total: Duration) {
    let step = Duration::from_millis(20).min(total);
    let mut left = total;
    while !left.is_zero() && !stop.load(Ordering::Acquire) {
        let chunk = step.min(left);
        std::thread::sleep(chunk);
        left = left.saturating_sub(chunk);
    }
}

/// A minimal blocking request/reply connection speaking the wire protocol.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
    next_id: u64,
    stop: Arc<AtomicBool>,
}

impl Conn {
    fn connect(addr: &str, stop: Arc<AtomicBool>) -> TsbResult<Conn> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(Conn {
            stream,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            next_id: 1,
            stop,
        })
    }

    /// Sends one request and blocks for its reply (this connection is
    /// strictly stop-and-wait, so ids always match in order).
    fn call(&mut self, req: &Request) -> TsbResult<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&protocol::encode_request(id, req))?;
        let mut stalled = Duration::ZERO;
        loop {
            if let Some(body) = self.decoder.next_frame()? {
                let (got, reply) = protocol::parse_reply(&body)?;
                if got != id {
                    return Err(TsbError::internal(format!(
                        "primary answered request {got} while {id} was pending"
                    )));
                }
                return Ok(reply);
            }
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    return Err(TsbError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "primary closed the connection",
                    )))
                }
                Ok(n) => {
                    stalled = Duration::ZERO;
                    self.decoder.feed(&self.read_buf[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if self.stop.load(Ordering::Acquire) {
                        return Err(TsbError::internal("replication stopped"));
                    }
                    stalled += READ_TIMEOUT;
                    if stalled >= CALL_STALL_LIMIT {
                        return Err(TsbError::Io(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "primary stalled mid-reply (no bytes for 10s)",
                        )));
                    }
                }
                Err(e) => return Err(TsbError::Io(e)),
            }
        }
    }
}
