//! The network chaos matrix: every fault class of
//! [`tsb_workload::ChaosProxy`] × both links of the deployment.
//!
//! * **Client link** — clients reach the primary only through the proxy.
//!   The property: whatever the proxy does (delays, severed connections,
//!   torn frames, duplicated bytes), no side panics, the failover client
//!   either gets an acknowledgement or a clean error, and **every
//!   acknowledged write is durable on the primary** when checked over a
//!   clean connection afterwards.
//! * **Replication link** — the replica subscribes through the proxy.
//!   The property: the runner survives arbitrary session deaths
//!   (reconnecting with backoff, re-bootstrapping when needed) and still
//!   **converges value-exact** once the weather passes, without the
//!   primary or replica process dying.
//!
//! Seeds come from `TSB_CHAOS_SEEDS` (comma-separated, default `1`), so
//! CI's chaos-stress job can sweep more weather than a developer's
//! `cargo test`. Every fault decision is a pure function of the seed —
//! a failure reproduces by exporting the seed it printed.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use tsb_client::{ClientOptions, FailoverClient, RetryPolicy, TsbClient};
use tsb_common::Key;
use tsb_workload::{ChaosProxy, ChaosSpec, Fault};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-chaos-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn(dir: &std::path::Path, extra: &[&str]) -> (Reaper, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tsb-server"))
        .arg(dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--fsync",
            "always",
            "--small-pages",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tsb-server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed nothing")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner: {banner}"));
    (Reaper(child), addr)
}

/// Seeds for the matrix: `TSB_CHAOS_SEEDS=1,2,3` in CI, `1` by default.
fn seeds() -> Vec<u64> {
    std::env::var("TSB_CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1])
}

/// Client ↔ server link under every fault class: acked writes survive.
#[test]
fn chaos_matrix_client_link() {
    const OPS: u64 = 250;
    for fault in Fault::ALL {
        for seed in seeds() {
            let dir = TempDir::new("client-link");
            let (_server, server_addr) = spawn(dir.path(), &[]);
            let mut proxy =
                ChaosProxy::start(server_addr, ChaosSpec { seed, fault }).expect("start proxy");
            let label = format!("fault={} seed={seed}", fault.name());

            let opts = ClientOptions {
                // Chaos makes individual ops slow; keep the per-op budget
                // generous and the socket timeouts short enough that a
                // severed-but-not-reset connection fails fast.
                read_timeout: Some(Duration::from_secs(5)),
                op_timeout: None,
                retry: RetryPolicy {
                    max_retries: 40,
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(200),
                },
                ..ClientOptions::default()
            };
            let mut client =
                FailoverClient::new([proxy.addr().to_string()], opts, seed).expect("client");
            let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
            for i in 0..OPS {
                let value = format!("{label} i={i}").into_bytes();
                match client.put(Key::from_u64(i), value.clone()) {
                    Ok(_) => acked.push((i, value)),
                    // A clean error after exhausting retries is
                    // acceptable under chaos; silent loss is not.
                    Err(e) => panic!("{label}: retries exhausted at op {i}: {e}"),
                }
            }

            // The weather clears: verify over a clean, direct connection.
            proxy.stop();
            let mut direct = TsbClient::connect(server_addr)
                .unwrap_or_else(|e| panic!("{label}: server unreachable after chaos: {e}"));
            direct.ping().expect("server must still be alive");
            for (key, value) in &acked {
                assert_eq!(
                    direct.get(Key::from_u64(*key)).expect("direct get"),
                    Some(value.clone()),
                    "{label}: acked write {key} lost"
                );
            }

            // Prove the fault actually fired (otherwise the matrix is
            // testing nothing).
            let stats = proxy.stats();
            assert!(stats.conns.load(Ordering::Relaxed) > 0, "{label}");
            match fault {
                Fault::None => {
                    assert!(stats.forwarded_bytes.load(Ordering::Relaxed) > 0, "{label}")
                }
                Fault::Delay => assert!(stats.delayed.load(Ordering::Relaxed) > 0, "{label}"),
                Fault::DropConn | Fault::Truncate => {
                    assert!(stats.severed.load(Ordering::Relaxed) > 0, "{label}")
                }
                Fault::DuplicatePartial => {
                    assert!(stats.duplicated.load(Ordering::Relaxed) > 0, "{label}")
                }
            }
        }
    }
}

/// Primary ↔ replica link under every fault class: the replica converges
/// value-exact once chaos stops, and both processes stay alive.
#[test]
fn chaos_matrix_replication_link() {
    const OPS: u64 = 150;
    const SPACE: u64 = 60;
    for fault in Fault::ALL {
        for seed in seeds() {
            let primary_dir = TempDir::new("repl-primary");
            let replica_dir = TempDir::new("repl-replica");
            let (_primary, primary_addr) = spawn(primary_dir.path(), &[]);
            let mut proxy =
                ChaosProxy::start(primary_addr, ChaosSpec { seed, fault }).expect("start proxy");
            let (_replica, replica_addr) = spawn(
                replica_dir.path(),
                &["--replica-of", &proxy.addr().to_string()],
            );
            let label = format!("fault={} seed={seed}", fault.name());

            // Write directly to the primary — the chaos is on the
            // replication link only.
            let mut primary = TsbClient::connect(primary_addr).expect("connect primary");
            let mut expect = BTreeMap::new();
            for i in 0..OPS {
                let key = i % SPACE;
                let value = format!("{label} i={i}").into_bytes();
                primary.put(Key::from_u64(key), value.clone()).expect("put");
                expect.insert(key, value);
            }

            // The replica must converge *through* the chaos: the runner
            // reconnects/rebases as sessions die. Generous deadline —
            // severed bootstraps restart from scratch.
            let deadline = Instant::now() + Duration::from_secs(120);
            'converge: loop {
                if let Ok(mut client) = TsbClient::connect(replica_addr) {
                    loop {
                        match client.replica_status() {
                            Ok(s) if s.serving && s.lag_records == 0 => {
                                let all = expect.iter().all(|(key, value)| {
                                    client.get(Key::from_u64(*key)).ok().flatten().as_ref()
                                        == Some(value)
                                });
                                if all {
                                    break 'converge;
                                }
                            }
                            Ok(_) => {}
                            Err(_) => break,
                        }
                        assert!(
                            Instant::now() < deadline,
                            "{label}: replica did not converge within 120s"
                        );
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "{label}: replica stopped accepting connections"
                );
                std::thread::sleep(Duration::from_millis(100));
            }

            // Both sides must still be healthy.
            primary
                .ping()
                .unwrap_or_else(|e| panic!("{label}: primary died: {e}"));
            proxy.stop();
        }
    }
}
