//! Server overload protection and client deadline behavior:
//!
//! * `--max-conns` sheds the connection **at accept** with one
//!   `overloaded` (23) error frame on id 0 — a clean, immediate,
//!   retryable refusal, never a hang — and recovers as soon as a slot
//!   frees;
//! * `--idle-timeout` reaps silent connections while leaving active ones
//!   alone;
//! * a client per-op deadline fires as [`TsbError::DeadlineExceeded`]
//!   against a server that accepts but never answers;
//! * shutdown drains: pipelined requests in flight at shutdown are all
//!   answered before the server exits 0.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tsb_client::{protocol, ClientOptions, TsbClient};
use tsb_common::{Key, TsbError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-degrade-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn(dir: &std::path::Path, extra: &[&str]) -> (Reaper, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tsb-server"))
        .arg(dir)
        .args(["--addr", "127.0.0.1:0", "--fsync", "os", "--small-pages"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tsb-server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed nothing")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner: {banner}"));
    (Reaper(child), addr)
}

#[test]
fn max_conns_sheds_with_overloaded_not_a_hang() {
    let dir = TempDir::new("shed");
    let (_server, addr) = spawn(dir.path(), &["--max-conns", "1"]);

    let mut first = TsbClient::connect(addr).expect("first connection");
    first.ping().expect("first connection works");

    // The second connection must be refused promptly with the
    // `overloaded` wire code — not left hanging.
    let started = Instant::now();
    let mut second = TsbClient::connect(addr).expect("TCP connect itself succeeds");
    match second.ping() {
        Err(TsbError::Overloaded(msg)) => {
            assert!(msg.contains("connection limit"), "unhelpful message: {msg}")
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shedding must be prompt, took {:?}",
        started.elapsed()
    );

    // Recoverable: free the slot and the next attempt is served.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut retry) = TsbClient::connect(addr) {
            if retry.ping().is_ok() {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after the first client disconnected"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn idle_timeout_reaps_silent_connections_only() {
    let dir = TempDir::new("idle");
    let (_server, addr) = spawn(dir.path(), &["--idle-timeout", "1"]);

    let mut silent = TsbClient::connect(addr).expect("silent connection");
    silent.ping().expect("alive before idling");
    let mut busy = TsbClient::connect(addr).expect("busy connection");

    // Stay active on one connection while the other idles past the limit.
    for _ in 0..10 {
        busy.ping().expect("busy connection must not be reaped");
        std::thread::sleep(Duration::from_millis(250));
    }

    // The silent one was reaped: its next request fails.
    match silent.ping() {
        Err(_) => {}
        Ok(_) => panic!("idle connection survived a 1s idle timeout after 2.5s of silence"),
    }
    // And the server is otherwise healthy.
    busy.ping().expect("server still serving");
}

#[test]
fn per_op_deadline_fires_against_a_mute_server() {
    // A listener that accepts and then says nothing, forever.
    let mute = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = mute.local_addr().unwrap();
    let _keep = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((conn, _)) = mute.accept() {
            held.push(conn);
        }
    });

    let opts = ClientOptions {
        op_timeout: Some(Duration::from_millis(300)),
        ..ClientOptions::default()
    };
    let mut client = TsbClient::connect_with(addr, &opts).expect("connect");
    let started = Instant::now();
    match client.ping() {
        Err(TsbError::DeadlineExceeded(_)) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let took = started.elapsed();
    assert!(
        took >= Duration::from_millis(250) && took < Duration::from_secs(5),
        "deadline fired at {took:?}, wanted ~300ms"
    );
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let dir = TempDir::new("drain");
    let (mut server, addr) = spawn(dir.path(), &[]);

    // Queue a pipeline of writes and the shutdown *behind* them on the
    // same connection: the drain contract says every one of them is
    // answered (acks flushed) before the listener goes down.
    let mut client = TsbClient::connect(addr).expect("connect");
    let mut ids = Vec::new();
    for i in 0..50u64 {
        let id = client
            .send(&protocol::Request::Put {
                key: Key::from_u64(i),
                value: format!("drain-{i}").into_bytes(),
            })
            .expect("send put");
        ids.push(id);
    }
    let shutdown_id = client
        .send(&protocol::Request::Shutdown)
        .expect("send shutdown");
    for id in ids {
        match client.wait_for(id).expect("reply before shutdown") {
            protocol::Reply::Committed { .. } => {}
            other => panic!("put answered {other:?}"),
        }
    }
    assert!(matches!(
        client.wait_for(shutdown_id).expect("shutdown ack"),
        protocol::Reply::Unit
    ));

    // The process exits 0 (clean drain + checkpoint), within a deadline.
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not exit after drain");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "server exited {status:?}");

    // Every drained write is durable: reopen and check.
    let (_server2, addr2) = spawn(dir.path(), &[]);
    let mut verify = TsbClient::connect(addr2).expect("reconnect");
    for i in 0..50u64 {
        assert_eq!(
            verify.get(Key::from_u64(i)).expect("get"),
            Some(format!("drain-{i}").into_bytes()),
            "drained write {i} lost"
        );
    }
}
