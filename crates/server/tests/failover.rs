//! Failover probes against the real binaries: replica promotion, epoch
//! fencing, and the promotion-under-load drill.
//!
//! The headline test is the drill the operations runbook
//! (`docs/operations.md`) promises: `kill -9` the primary mid-traffic,
//! promote the replica, let the clients' failover layer re-discover the
//! primary by role + epoch — and verify that **every write that was ever
//! acknowledged to a client is still readable** afterwards. The probe is
//! honest about the async-replication caveat: it quiesces writers and
//! waits until the replica has applied through the *primary's* durable
//! LSN (`role` reply) *before* the kill — an operator promoting a
//! lagging replica accepts losing the unshipped tail; the probe proves
//! the machinery itself loses nothing it claimed to have. Waiting for
//! the replica's own lag counters instead would be a trap: they compare
//! against the watermark the replica last polled, which can read zero
//! while newer durable records sit on the primary, unshipped.
//!
//! Epoch fencing is tested both ways:
//!
//! * a `subscribe` presenting the **old** epoch is rejected with the
//!   `stale-epoch` wire code (16) — a rebooted demoted primary cannot
//!   feed off the new lineage without re-bootstrapping;
//! * the demoted primary re-pointed with `--replica-of` at the promoted
//!   node rebases: its divergent tail (writes it accepted after the
//!   promotion, which no client of the new lineage ever saw) is
//!   discarded, and it converges value-exact to the new primary.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use tsb_client::{protocol, ClientOptions, FailoverClient, RetryPolicy, TsbClient};
use tsb_common::{Key, TsbError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-failover-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion never leaks a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn(dir: &std::path::Path, extra: &[&str]) -> (Reaper, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tsb-server"))
        .arg(dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--fsync",
            "always",
            "--small-pages",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tsb-server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed nothing")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner: {banner}"));
    (Reaper(child), addr)
}

/// The no-loss half of the promotion drill: with writers quiesced, read
/// the durable watermark off the *primary's* `role` reply, then wait
/// until the replica has applied through it. The replica's own lag
/// counters are relative to the primary watermark it last *polled*, so
/// they can momentarily read zero while the primary already holds newer
/// durable records that never shipped — promoting inside that window
/// would silently drop them. Comparing against the primary's number is
/// the only honest check.
fn wait_caught_up(primary_addr: std::net::SocketAddr, replica_addr: std::net::SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let target = loop {
        if let Ok(mut primary) = TsbClient::connect(primary_addr) {
            if let Ok(role) = primary.role() {
                break role.durable_lsn;
            }
        }
        assert!(
            Instant::now() < deadline,
            "could not read the primary's durable watermark"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    loop {
        if let Ok(mut client) = TsbClient::connect(replica_addr) {
            while Instant::now() < deadline {
                match client.replica_status() {
                    Ok(s) if s.serving && s.applied_lsn >= target => return,
                    Ok(_) => {}
                    Err(_) => break,
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        assert!(
            Instant::now() < deadline,
            "replica did not catch up to the primary's durable LSN within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn retrying_promote(addr: std::net::SocketAddr) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(mut client) = TsbClient::connect(addr) {
            if let Ok(epoch) = client.promote() {
                return epoch;
            }
        }
        assert!(
            Instant::now() < deadline,
            "promotion did not succeed in 20s"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The promotion-under-load drill. Kill -9 the primary, promote the
/// replica, and prove zero acknowledged writes were lost while writer
/// threads fail over live through [`FailoverClient`].
#[test]
fn promotion_under_load_loses_no_acked_writes() {
    const WRITERS: usize = 3;
    const PHASE_OPS: u64 = 120;

    let primary_dir = TempDir::new("load-primary");
    let replica_dir = TempDir::new("load-replica");
    let (primary_proc, primary_addr) = spawn(primary_dir.path(), &[]);
    let (_replica_proc, replica_addr) = spawn(
        replica_dir.path(),
        &["--replica-of", &primary_addr.to_string()],
    );

    let opts = ClientOptions {
        op_timeout: Some(Duration::from_secs(10)),
        retry: RetryPolicy {
            max_retries: 30,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(500),
        },
        ..ClientOptions::default()
    };

    // Writers run two phases: before the kill and across the failover.
    // Phase boundaries are barriers so the main thread can quiesce,
    // verify lag zero, and kill between them.
    let quiesced = Arc::new(Barrier::new(WRITERS + 1));
    let resume = Arc::new(Barrier::new(WRITERS + 1));
    let failed = Arc::new(AtomicBool::new(false));
    let endpoints = [primary_addr.to_string(), replica_addr.to_string()];
    let mut handles = Vec::new();
    for tid in 0..WRITERS {
        let opts = opts.clone();
        let endpoints = endpoints.clone();
        let quiesced = Arc::clone(&quiesced);
        let resume = Arc::clone(&resume);
        let failed = Arc::clone(&failed);
        handles.push(std::thread::spawn(move || {
            let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut client =
                FailoverClient::new(endpoints.iter().cloned(), opts, tid as u64).unwrap();
            let base = (tid as u64 + 1) * 1_000_000;
            for i in 0..PHASE_OPS {
                let key = base + i;
                let value = format!("w{tid}-pre-{i}").into_bytes();
                match client.put(Key::from_u64(key), value.clone()) {
                    Ok(_) => acked.push((key, value)),
                    Err(e) => {
                        failed.store(true, Ordering::SeqCst);
                        panic!("writer {tid} pre-kill put failed: {e}");
                    }
                }
            }
            quiesced.wait();
            resume.wait();
            for i in 0..PHASE_OPS {
                let key = base + PHASE_OPS + i;
                let value = format!("w{tid}-post-{i}").into_bytes();
                match client.put(Key::from_u64(key), value.clone()) {
                    Ok(_) => acked.push((key, value)),
                    Err(e) => {
                        failed.store(true, Ordering::SeqCst);
                        panic!("writer {tid} post-kill put failed: {e}");
                    }
                }
            }
            acked
        }));
    }

    // Quiesce, drain replication, then murder the primary.
    quiesced.wait();
    wait_caught_up(primary_addr, replica_addr);
    drop(primary_proc); // Reaper: SIGKILL, no goodbye.

    // Release the writers *before* promoting: their first post-kill
    // attempts race the promotion and must survive on retries alone.
    resume.wait();
    let epoch = retrying_promote(replica_addr);
    assert_eq!(epoch, 2, "first promotion of a fresh lineage bumps 1 -> 2");

    let mut all_acked: Vec<(u64, Vec<u8>)> = Vec::new();
    for h in handles {
        all_acked.extend(h.join().expect("writer thread panicked"));
    }
    assert!(!failed.load(Ordering::SeqCst));
    assert_eq!(all_acked.len(), WRITERS * 2 * PHASE_OPS as usize);

    // Every acknowledged write must be readable on the promoted primary.
    let mut verify = TsbClient::connect(replica_addr).expect("connect promoted");
    let role = verify.role().expect("role");
    assert!(role.primary, "promoted node must serve as primary");
    assert_eq!(role.epoch, 2);
    for (key, value) in &all_acked {
        assert_eq!(
            verify.get(Key::from_u64(*key)).expect("get on promoted"),
            Some(value.clone()),
            "acked write {key} lost across failover"
        );
    }
}

/// Promotion mechanics and epoch fencing, step by step: idempotent
/// promotion, stale-epoch subscribe rejection, divergent-tail discard on
/// rebase, and epoch persistence across restart.
#[test]
fn promotion_fences_stale_epochs_and_discards_divergent_tail() {
    let primary_dir = TempDir::new("fence-primary");
    let replica_dir = TempDir::new("fence-replica");
    let (primary_proc, primary_addr) = spawn(primary_dir.path(), &[]);
    let (replica_proc, replica_addr) = spawn(
        replica_dir.path(),
        &["--replica-of", &primary_addr.to_string()],
    );

    let mut primary = TsbClient::connect(primary_addr).expect("connect primary");
    let mut expect = BTreeMap::new();
    for i in 0..40u64 {
        let value = format!("v-{i}").into_bytes();
        primary.put(Key::from_u64(i), value.clone()).expect("put");
        expect.insert(i, value);
    }
    wait_caught_up(primary_addr, replica_addr);

    // Promote. The replica is now a primary at epoch 2; doing it again is
    // a no-op answering the same epoch.
    let mut replica = TsbClient::connect(replica_addr).expect("connect replica");
    assert_eq!(replica.promote().expect("promote"), 2);
    assert_eq!(replica.promote().expect("re-promote"), 2);
    let role = replica.role().expect("role");
    assert!(role.primary);
    assert_eq!(role.epoch, 2);

    // The promoted node accepts writes now.
    let value = b"post-promotion".to_vec();
    replica
        .put(Key::from_u64(1000), value.clone())
        .expect("write on promoted");
    expect.insert(1000, value);

    // Promotion preserved the entire applied prefix: the drill waited for
    // the primary's durable LSN, so nothing acked may be missing here.
    for (key, value) in &expect {
        assert_eq!(
            replica.get(Key::from_u64(*key)).expect("get on promoted"),
            Some(value.clone()),
            "acked write {key} lost at promotion"
        );
    }

    // Fencing, wire-level: a subscriber presenting the old epoch (the
    // demoted primary's lineage) is rejected with stale-epoch (16), while
    // epoch 0 ("first contact") and the current epoch are accepted.
    for (epoch, want_reject) in [(1u64, true), (2, false), (0, false)] {
        let id = replica
            .send(&protocol::Request::Subscribe {
                from_lsn: u64::MAX,
                worm_have: u64::MAX,
                max_bytes: 4096,
                epoch,
            })
            .expect("send subscribe");
        match replica.wait_for(id).expect("subscribe reply") {
            protocol::Reply::Error { code, .. } => {
                assert!(want_reject, "epoch {epoch} unexpectedly rejected");
                assert_eq!(code, protocol::CODE_STALE_EPOCH);
            }
            other => {
                assert!(
                    !want_reject,
                    "epoch {epoch} should have been rejected, got {other:?}"
                );
                assert!(matches!(other, protocol::Reply::Batch { .. }), "{other:?}");
            }
        }
    }

    // Split brain: the old primary is still up at epoch 1 and accepts a
    // write nobody in the new lineage will ever see.
    primary
        .put(Key::from_u64(2000), b"divergent".to_vec())
        .expect("split-brain write");
    primary.shutdown_server().expect("shutdown old primary");
    drop(primary_proc);

    // Re-point the demoted primary at the promoted node. Its local state
    // carries epoch 1 → its subscribe is fenced off → it re-bootstraps,
    // discarding the divergent tail, and converges to the new lineage.
    let (_demoted_proc, demoted_addr) = spawn(
        primary_dir.path(),
        &["--replica-of", &replica_addr.to_string()],
    );
    // The demoted node first serves its own stale state, then the fenced
    // subscribe forces the rebase (briefly not serving while the base
    // installs) — so poll for value-exact convergence to the *new*
    // lineage, not merely for reported lag zero.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut demoted = 'converged: loop {
        if let Ok(mut client) = TsbClient::connect(demoted_addr) {
            loop {
                let settled = client
                    .replica_status()
                    .map(|s| s.serving && s.lag_records == 0 && s.ship_lag_records == 0);
                match settled {
                    Ok(true) => {
                        let rebased =
                            expect.iter().all(|(key, value)| {
                                client.get(Key::from_u64(*key)).ok().flatten().as_ref()
                                    == Some(value)
                            }) && client.get(Key::from_u64(2000)).ok().flatten().is_none();
                        if rebased {
                            break 'converged client;
                        }
                    }
                    Ok(false) => {}
                    Err(_) => break,
                }
                assert!(
                    Instant::now() < deadline,
                    "demoted node did not rebase onto the new lineage within 60s"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        assert!(
            Instant::now() < deadline,
            "demoted node stopped accepting connections"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(
        demoted.get(Key::from_u64(2000)).expect("get divergent"),
        None,
        "divergent tail survived the rebase"
    );

    // Writes to the demoted node get read-only: it is a replica now.
    match demoted.put(Key::from_u64(1), b"nope".to_vec()) {
        Err(TsbError::ReadOnly) => {}
        other => panic!("expected ReadOnly on demoted node, got {other:?}"),
    }

    // The promotion epoch survives a clean restart of the promoted node.
    replica.shutdown_server().expect("shutdown promoted");
    drop(replica_proc);
    let (_promoted_proc, promoted_addr) = spawn(replica_dir.path(), &[]);
    let mut promoted = TsbClient::connect(promoted_addr).expect("reconnect promoted");
    let role = promoted.role().expect("role after restart");
    assert!(role.primary);
    assert_eq!(role.epoch, 2, "promotion epoch must be durable");
}
