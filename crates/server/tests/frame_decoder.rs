//! Property tests for the wire-protocol frame decoder.
//!
//! The decoder faces the network, i.e. arbitrary bytes. The properties:
//!
//! * **No panic, ever** — malformed, truncated, oversized, or garbage
//!   input must surface as `FrameError`, never as a panic (each property
//!   body exercises the full decode path; a panic fails the test run).
//! * **No over-allocation** — buffered memory is bounded by the bytes
//!   actually fed plus one frame copy, regardless of what a hostile
//!   length prefix claims.
//! * **Torn-frame completeness** — any valid request stream chopped at
//!   *every* byte boundary reassembles to exactly the original requests.

use proptest::prelude::*;

use tsb_common::{Key, KeyBound, KeyRange, TimeRange, Timestamp, TxnId};
use tsb_server::protocol::{
    encode_request, parse_request, FrameDecoder, FrameError, Request, MAX_FRAME_BODY,
    MIN_FRAME_BODY,
};

fn key() -> impl Strategy<Value = Key> {
    any::<u64>().prop_map(Key::from_u64)
}

fn small_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (key(), small_bytes()).prop_map(|(key, value)| Request::Put { key, value }),
        key().prop_map(|key| Request::Delete { key }),
        key().prop_map(|key| Request::Get { key }),
        (key(), any::<u64>()).prop_map(|(key, ts)| Request::GetAsOf {
            key,
            as_of: Timestamp(ts),
        }),
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(lo, ts, current)| {
            Request::Range {
                range: KeyRange::new(Key::from_u64(lo), KeyBound::PlusInfinity),
                as_of: if current { None } else { Some(Timestamp(ts)) },
            }
        }),
        (key(), any::<u64>()).prop_map(|(key, lo)| Request::History {
            key,
            window: TimeRange::from(Timestamp(lo)),
        }),
        Just(Request::TxnBegin),
        (any::<u64>(), key(), prop::option::of(small_bytes())).prop_map(|(txn, key, value)| {
            Request::TxnWrite {
                txn: TxnId(txn),
                key,
                value,
            }
        }),
        any::<u64>().prop_map(|t| Request::TxnCommit { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| Request::TxnAbort { txn: TxnId(t) }),
        Just(Request::Ping),
        Just(Request::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary garbage fed in arbitrary chunk sizes never panics and
    /// never buffers more than it was fed.
    #[test]
    fn garbage_never_panics_or_over_allocates(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..17,
    ) {
        let mut dec = FrameDecoder::new();
        let mut fed = 0usize;
        let mut dead = false;
        for piece in bytes.chunks(chunk) {
            if dead { break; }
            dec.feed(piece);
            fed += piece.len();
            loop {
                match dec.next_frame() {
                    Ok(Some(body)) => {
                        // A complete frame from garbage is possible (the
                        // prefix happened to be plausible); parsing it must
                        // still not panic.
                        let _ = parse_request(&body);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Framing is gone: a real server closes here.
                        prop_assert!(matches!(e, FrameError::Oversized { .. }));
                        dead = true;
                        break;
                    }
                }
            }
            // Buffered bytes can never exceed what was actually fed.
            prop_assert!(dec.buffered() <= fed);
        }
    }

    /// A hostile length prefix is rejected before any allocation: the
    /// decoder's buffer holds only the bytes fed, not the declared size.
    #[test]
    fn declared_length_does_not_drive_allocation(declared in (MAX_FRAME_BODY as u64 + 1)..u32::MAX as u64) {
        let mut dec = FrameDecoder::new();
        dec.feed(&(declared as u32).to_le_bytes());
        prop_assert!(matches!(dec.next_frame(), Err(FrameError::Oversized { .. })));
        prop_assert!(dec.buffered() <= 4);
    }

    /// Undersized bodies (below id + tag) are equally fatal.
    #[test]
    fn undersized_bodies_are_rejected(declared in 0u32..(MIN_FRAME_BODY as u32)) {
        let mut dec = FrameDecoder::new();
        dec.feed(&declared.to_le_bytes());
        dec.feed(&vec![0u8; declared as usize]);
        prop_assert!(matches!(dec.next_frame(), Err(FrameError::Oversized { .. })));
    }

    /// Any pipelined request stream, torn at every byte boundary,
    /// reassembles to exactly the original sequence.
    #[test]
    fn torn_frames_reassemble_exactly(
        reqs in prop::collection::vec(request_strategy(), 1..8),
    ) {
        let mut wire = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            wire.extend_from_slice(&encode_request(i as u64, req));
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for byte in &wire {
            dec.feed(std::slice::from_ref(byte));
            while let Some(body) = dec.next_frame().expect("valid stream") {
                decoded.push(parse_request(&body).expect("valid frame"));
            }
        }
        prop_assert_eq!(decoded.len(), reqs.len());
        for (i, ((id, got), want)) in decoded.into_iter().zip(reqs).enumerate() {
            prop_assert_eq!(id, i as u64);
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// A valid frame with its body corrupted (any single byte flipped
    /// after the id) parses to an error or to *some* request — never a
    /// panic — and truncated bodies always error.
    #[test]
    fn corrupted_bodies_error_or_parse_but_never_panic(
        req in request_strategy(),
        flip_at in any::<usize>(),
        flip_with in 1u8..=255,
        cut in any::<usize>(),
    ) {
        let frame = encode_request(7, &req);
        let body = &frame[4..];

        // Bit-flip somewhere in the body.
        let mut flipped = body.to_vec();
        let at = flip_at % flipped.len();
        flipped[at] ^= flip_with;
        let _ = parse_request(&flipped);

        // Truncation at any interior boundary always errors: field lengths
        // are self-describing and the parser demands exact exhaustion, so
        // a strict prefix can never parse as a complete request.
        let cut_at = cut % body.len();
        prop_assert!(parse_request(&body[..cut_at]).is_err());
    }
}
