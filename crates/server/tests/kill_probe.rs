//! Crash probe: `kill -9` a live `tsb-server` and prove that no
//! acknowledged write is lost.
//!
//! This is the served-path analogue of the in-process recovery matrix: the
//! server binary runs with `--fsync always`, a client records every put the
//! server *acknowledged* (an ack means the commit LSN passed the durable
//! watermark), the process is killed without any chance to flush, and the
//! data directory is reopened in-process. Every acknowledged key/value must
//! be there; writes that were in flight but unacknowledged may or may not
//! be — both are correct.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use tsb_client::TsbClient;
use tsb_common::{FsyncPolicy, Key, TsbConfig};
use tsb_core::ConcurrentTsb;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-kill-probe-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion never leaks a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(dir: &std::path::Path, fsync: &str) -> (Reaper, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tsb-server"))
        .arg(dir)
        .args(["--addr", "127.0.0.1:0", "--fsync", fsync, "--small-pages"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tsb-server");

    // The binary prints `tsb-server listening on {addr}` once bound.
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed nothing")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner: {banner}"));
    (Reaper(child), addr)
}

#[test]
fn kill_nine_loses_no_acknowledged_write() {
    let dir = TempDir::new("always");
    let acked: Vec<(u64, Vec<u8>)> = {
        let (mut server, addr) = spawn_server(dir.path(), "always");
        let mut client = TsbClient::connect(addr).expect("connect");

        let mut acked = Vec::new();
        for i in 0u64..64 {
            let key = i % 16;
            let value = format!("acked-{i}").into_bytes();
            // `put` returns only after the server acknowledged, and the
            // server acknowledges only at durability. If this returns Ok,
            // the write must survive SIGKILL.
            client.put(Key::from_u64(key), value.clone()).expect("put");
            acked.retain(|(k, _)| *k != key);
            acked.push((key, value));
        }

        // SIGKILL: no flush, no checkpoint, no Drop handlers.
        server.0.kill().expect("kill -9");
        server.0.wait().expect("reap");
        acked
    };

    let cfg = TsbConfig {
        fsync_policy: FsyncPolicy::Always,
        ..TsbConfig::small_pages()
    };
    let reopened = ConcurrentTsb::open_durable(dir.path(), cfg).expect("reopen after SIGKILL");
    for (k, value) in &acked {
        assert_eq!(
            reopened.get_current(&Key::from_u64(*k)).expect("get"),
            Some(value.clone()),
            "acknowledged key {k} lost after kill -9"
        );
    }
}

#[test]
fn kill_nine_mid_pipeline_keeps_every_acked_group_commit() {
    use tsb_client::protocol::{Reply, Request};

    // `always` is the one policy whose ack is a per-LSN durability promise;
    // EveryN acks promise only group-boundary durability, so a SIGKILL may
    // legitimately drop the unsynced tail there. The pipelining still
    // exercises batched acks riding a single watermark wait.
    let dir = TempDir::new("pipelined");
    let acked: Vec<(u64, Vec<u8>)> = {
        let (mut server, addr) = spawn_server(dir.path(), "always");
        let mut client = TsbClient::connect(addr).expect("connect");

        // Pipeline bursts so acks ride the group-commit watermark, then
        // record exactly the ones that came back Committed.
        let mut acked = Vec::new();
        for burst in 0u64..8 {
            let mut ids = Vec::new();
            for j in 0u64..8 {
                let i = burst * 8 + j;
                let key = i % 16;
                let value = format!("pipelined-{i}").into_bytes();
                let id = client
                    .send(&Request::Put {
                        key: Key::from_u64(key),
                        value: value.clone(),
                    })
                    .expect("send");
                ids.push((id, key, value));
            }
            for (id, key, value) in ids {
                match client.wait_for(id).expect("wait_for") {
                    Reply::Committed { .. } => {
                        acked.retain(|(k, _)| *k != key);
                        acked.push((key, value));
                    }
                    other => panic!("expected Committed, got {other:?}"),
                }
            }
        }

        server.0.kill().expect("kill -9");
        server.0.wait().expect("reap");
        acked
    };

    let cfg = TsbConfig {
        fsync_policy: FsyncPolicy::Always,
        ..TsbConfig::small_pages()
    };
    let reopened = ConcurrentTsb::open_durable(dir.path(), cfg).expect("reopen after SIGKILL");
    for (k, value) in &acked {
        assert_eq!(
            reopened.get_current(&Key::from_u64(*k)).expect("get"),
            Some(value.clone()),
            "acknowledged key {k} lost after kill -9 mid-pipeline"
        );
    }
}
