//! Crash probe: `kill -9` a live `tsb-server` and prove that no
//! acknowledged write is lost.
//!
//! This is the served-path analogue of the in-process recovery matrix: the
//! server binary runs with `--fsync always`, a client records every put the
//! server *acknowledged* (an ack means the commit LSN passed the durable
//! watermark), the process is killed without any chance to flush, and the
//! data directory is reopened in-process. Every acknowledged key/value must
//! be there; writes that were in flight but unacknowledged may or may not
//! be — both are correct.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use tsb_client::TsbClient;
use tsb_common::{FsyncPolicy, Key, TsbConfig};
use tsb_core::sharded::shard_of;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-kill-probe-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion never leaks a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(dir: &std::path::Path, fsync: &str) -> (Reaper, std::net::SocketAddr) {
    spawn_server_with(dir, fsync, &[])
}

fn spawn_server_with(
    dir: &std::path::Path,
    fsync: &str,
    extra: &[&str],
) -> (Reaper, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tsb-server"))
        .arg(dir)
        .args(["--addr", "127.0.0.1:0", "--fsync", fsync, "--small-pages"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tsb-server");

    // The binary prints `tsb-server listening on {addr}` once bound.
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed nothing")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner: {banner}"));
    (Reaper(child), addr)
}

#[test]
fn kill_nine_loses_no_acknowledged_write() {
    let dir = TempDir::new("always");
    let acked: Vec<(u64, Vec<u8>)> = {
        let (mut server, addr) = spawn_server(dir.path(), "always");
        let mut client = TsbClient::connect(addr).expect("connect");

        let mut acked = Vec::new();
        for i in 0u64..64 {
            let key = i % 16;
            let value = format!("acked-{i}").into_bytes();
            // `put` returns only after the server acknowledged, and the
            // server acknowledges only at durability. If this returns Ok,
            // the write must survive SIGKILL.
            client.put(Key::from_u64(key), value.clone()).expect("put");
            acked.retain(|(k, _)| *k != key);
            acked.push((key, value));
        }

        // SIGKILL: no flush, no checkpoint, no Drop handlers.
        server.0.kill().expect("kill -9");
        server.0.wait().expect("reap");
        acked
    };

    let cfg = TsbConfig {
        fsync_policy: FsyncPolicy::Always,
        ..TsbConfig::small_pages()
    };
    let reopened = tsb_core::TsbOptions::durable(dir.path())
        .config(cfg)
        .open_concurrent()
        .expect("reopen after SIGKILL");
    for (k, value) in &acked {
        assert_eq!(
            reopened.get_current(&Key::from_u64(*k)).expect("get"),
            Some(value.clone()),
            "acknowledged key {k} lost after kill -9"
        );
    }
}

#[test]
fn kill_nine_mid_pipeline_keeps_every_acked_group_commit() {
    use tsb_client::protocol::{Reply, Request};

    // `always` is the one policy whose ack is a per-LSN durability promise;
    // EveryN acks promise only group-boundary durability, so a SIGKILL may
    // legitimately drop the unsynced tail there. The pipelining still
    // exercises batched acks riding a single watermark wait.
    let dir = TempDir::new("pipelined");
    let acked: Vec<(u64, Vec<u8>)> = {
        let (mut server, addr) = spawn_server(dir.path(), "always");
        let mut client = TsbClient::connect(addr).expect("connect");

        // Pipeline bursts so acks ride the group-commit watermark, then
        // record exactly the ones that came back Committed.
        let mut acked = Vec::new();
        for burst in 0u64..8 {
            let mut ids = Vec::new();
            for j in 0u64..8 {
                let i = burst * 8 + j;
                let key = i % 16;
                let value = format!("pipelined-{i}").into_bytes();
                let id = client
                    .send(&Request::Put {
                        key: Key::from_u64(key),
                        value: value.clone(),
                    })
                    .expect("send");
                ids.push((id, key, value));
            }
            for (id, key, value) in ids {
                match client.wait_for(id).expect("wait_for") {
                    Reply::Committed { .. } => {
                        acked.retain(|(k, _)| *k != key);
                        acked.push((key, value));
                    }
                    other => panic!("expected Committed, got {other:?}"),
                }
            }
        }

        server.0.kill().expect("kill -9");
        server.0.wait().expect("reap");
        acked
    };

    let cfg = TsbConfig {
        fsync_policy: FsyncPolicy::Always,
        ..TsbConfig::small_pages()
    };
    let reopened = tsb_core::TsbOptions::durable(dir.path())
        .config(cfg)
        .open_concurrent()
        .expect("reopen after SIGKILL");
    for (k, value) in &acked {
        assert_eq!(
            reopened.get_current(&Key::from_u64(*k)).expect("get"),
            Some(value.clone()),
            "acknowledged key {k} lost after kill -9 mid-pipeline"
        );
    }
}

/// One key per shard for a 4-shard server, so every probe transaction
/// genuinely straddles all four shards and commits through the two-phase
/// fence.
fn straddling_keys(round: u64) -> Vec<u64> {
    const SHARDS: usize = 4;
    let mut picked: Vec<Option<u64>> = vec![None; SHARDS];
    let mut candidate = 10_000 + round * 1_000;
    while picked.iter().any(Option::is_none) {
        let shard = shard_of(&Key::from_u64(candidate), SHARDS);
        if picked[shard].is_none() {
            picked[shard] = Some(candidate);
        }
        candidate += 1;
    }
    picked.into_iter().map(Option::unwrap).collect()
}

/// The sharded served path under SIGKILL: `--shards 4 --fsync always`,
/// plain puts interleaved with cross-shard transactions, the process
/// killed with a commit still in flight. Zero acknowledged writes lost and
/// zero partially-committed cross-shard transactions.
#[test]
fn kill_nine_sharded_server_loses_no_acks_and_no_partial_commits() {
    use tsb_client::protocol::Request;

    let dir = TempDir::new("sharded");
    let mut acked_puts: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut acked_txns: Vec<(Vec<u64>, u64)> = Vec::new();
    let inflight: (Vec<u64>, u64) = {
        let (mut server, addr) = spawn_server_with(dir.path(), "always", &["--shards", "4"]);
        let mut client = TsbClient::connect(addr).expect("connect");

        for round in 0u64..10 {
            for j in 0u64..6 {
                let key = round * 6 + j;
                let value = format!("put-{key}").into_bytes();
                client.put(Key::from_u64(key), value.clone()).expect("put");
                acked_puts.retain(|(k, _)| *k != key);
                acked_puts.push((key, value));
            }
            let keys = straddling_keys(round);
            let txn = client.txn_begin().expect("txn_begin");
            for k in &keys {
                client
                    .txn_write(
                        txn,
                        Key::from_u64(*k),
                        Some(format!("txn-{round}-{k}").into_bytes()),
                    )
                    .expect("txn_write");
            }
            client.txn_commit(txn).expect("txn_commit");
            acked_txns.push((keys, round));
        }

        // One last cross-shard commit sent but never awaited: SIGKILL lands
        // with the two-phase fence possibly mid-flight. Whatever happened,
        // it must not be partial.
        let round = 10u64;
        let keys = straddling_keys(round);
        let txn = client.txn_begin().expect("txn_begin");
        for k in &keys {
            client
                .txn_write(
                    txn,
                    Key::from_u64(*k),
                    Some(format!("txn-{round}-{k}").into_bytes()),
                )
                .expect("txn_write");
        }
        client
            .send(&Request::TxnCommit { txn })
            .expect("send commit");

        server.0.kill().expect("kill -9");
        server.0.wait().expect("reap");
        (keys, round)
    };

    let cfg = TsbConfig {
        fsync_policy: FsyncPolicy::Always,
        ..TsbConfig::small_pages()
    };
    let reopened = tsb_core::TsbOptions::durable(dir.path())
        .config(cfg)
        .shards(4)
        .open()
        .expect("sharded reopen");
    reopened.verify().expect("verify");
    for (k, value) in &acked_puts {
        assert_eq!(
            reopened.get_current(&Key::from_u64(*k)).expect("get"),
            Some(value.clone()),
            "acknowledged put {k} lost after kill -9"
        );
    }
    for (keys, round) in &acked_txns {
        for k in keys {
            assert_eq!(
                reopened.get_current(&Key::from_u64(*k)).expect("get"),
                Some(format!("txn-{round}-{k}").into_bytes()),
                "acknowledged cross-shard txn {round} lost key {k}"
            );
        }
    }
    // The in-flight commit: all four shards or none of them.
    let (keys, round) = inflight;
    let present = keys
        .iter()
        .filter(|k| {
            reopened.get_current(&Key::from_u64(**k)).expect("get")
                == Some(format!("txn-{round}-{k}").into_bytes())
        })
        .count();
    assert!(
        present == 0 || present == keys.len(),
        "in-flight cross-shard txn committed on {present}/{} shards after kill -9",
        keys.len()
    );
}
