//! End-to-end replication probes against the real binaries: a primary
//! `tsb-server` and a `--replica-of` replica process, connected over TCP.
//!
//! Three scenarios:
//!
//! * Bootstrap + stream: a replica started against a primary with existing
//!   data fetches a base image, streams the log, serves value-exact reads,
//!   and rejects writes with the read-only error. The client-side read
//!   preference routes reads to it transparently.
//! * `kill -9` the replica: a restarted replica resumes from its own local
//!   log copy (no re-bootstrap) and converges on everything written while
//!   it was down.
//! * Checkpoint reset while the replica is down: the primary's clean
//!   shutdown checkpoints (discarding the log the replica still needed),
//!   so the restarted replica must detect `needs_rebase` over the wire,
//!   re-fetch a fresh base, and still converge value-exact.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tsb_client::{ReadPreference, TsbClient};
use tsb_common::Key;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-repl-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion never leaks a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn(dir: &std::path::Path, extra: &[&str]) -> (Reaper, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tsb-server"))
        .arg(dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--fsync",
            "always",
            "--small-pages",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tsb-server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed nothing")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner: {banner}"));
    (Reaper(child), addr)
}

fn spawn_primary(dir: &std::path::Path) -> (Reaper, std::net::SocketAddr) {
    spawn(dir, &[])
}

fn spawn_replica(
    dir: &std::path::Path,
    primary: std::net::SocketAddr,
) -> (Reaper, std::net::SocketAddr) {
    spawn(dir, &["--replica-of", &primary.to_string()])
}

/// Polls the replica until it serves with zero reported lag *and* its
/// values match `expect` exactly. The reported lag alone is not enough:
/// the replica's view of the primary watermark is only as fresh as its
/// last poll, so a just-committed tail can be invisible to it for a
/// moment. Connection failures during startup are retried too.
fn wait_converged(
    replica_addr: std::net::SocketAddr,
    expect: &BTreeMap<u64, Vec<u8>>,
) -> TsbClient {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut client) = TsbClient::connect(replica_addr) {
            loop {
                match client.replica_status() {
                    Ok(s) if s.serving && s.lag_records == 0 => {
                        let matches = expect.iter().all(|(key, value)| {
                            client.get(Key::from_u64(*key)).ok().flatten().as_ref() == Some(value)
                        });
                        if matches {
                            return client;
                        }
                    }
                    Ok(_) => {}
                    // Lost the connection (e.g. replica still starting up):
                    // reconnect.
                    Err(_) => break,
                }
                if Instant::now() > deadline {
                    panic!("replica did not converge within 30s");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        if Instant::now() > deadline {
            panic!("replica did not accept a connection within 30s");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Writes `count` keys (cycling over `space`) through the client and folds
/// the final value of each key into `expect`.
fn write_batch(
    client: &mut TsbClient,
    expect: &mut BTreeMap<u64, Vec<u8>>,
    tag: &str,
    space: u64,
    count: u64,
) {
    for i in 0..count {
        let key = i % space;
        let value = format!("{tag}-{i}").into_bytes();
        client.put(Key::from_u64(key), value.clone()).expect("put");
        expect.insert(key, value);
    }
}

fn assert_replica_matches(client: &mut TsbClient, expect: &BTreeMap<u64, Vec<u8>>) {
    for (key, value) in expect {
        assert_eq!(
            client.get(Key::from_u64(*key)).expect("replica get"),
            Some(value.clone()),
            "replica diverged on key {key}"
        );
    }
}

#[test]
fn replica_bootstraps_streams_and_rejects_writes() {
    let primary_dir = TempDir::new("boot-p");
    let replica_dir = TempDir::new("boot-r");
    let (_primary, primary_addr) = spawn_primary(primary_dir.path());
    let mut primary = TsbClient::connect(primary_addr).expect("connect primary");

    // Data written *before* the replica exists arrives via the base image.
    let mut expect = BTreeMap::new();
    write_batch(&mut primary, &mut expect, "base", 16, 48);

    let (_replica, replica_addr) = spawn_replica(replica_dir.path(), primary_addr);

    // Data written *after* arrives via the subscribe stream.
    write_batch(&mut primary, &mut expect, "stream", 16, 48);

    let mut replica = wait_converged(replica_addr, &expect);
    assert_replica_matches(&mut replica, &expect);

    // Roles over the wire.
    let role = primary.role().expect("primary role");
    assert!(role.primary);
    let role = replica.role().expect("replica role");
    assert!(!role.primary);

    // Writes are rejected with the read-only error class.
    let err = replica
        .put(Key::from_u64(0), b"nope".to_vec())
        .expect_err("replica accepted a write");
    assert!(
        err.to_string().contains("read-only"),
        "unexpected rejection: {err}"
    );

    // The read preference routes reads to the replica transparently:
    // writes keep flowing to the primary connection.
    primary
        .set_read_preference(ReadPreference::Replica(replica_addr.to_string()))
        .expect("set read preference");
    write_batch(&mut primary, &mut expect, "routed", 16, 16);
    let _ = wait_converged(replica_addr, &expect);
    for (key, value) in &expect {
        assert_eq!(
            primary.get(Key::from_u64(*key)).expect("routed get"),
            Some(value.clone()),
            "routed read diverged on key {key}"
        );
    }
}

#[test]
fn kill_nine_replica_reconnects_from_its_local_log() {
    let primary_dir = TempDir::new("kill-p");
    let replica_dir = TempDir::new("kill-r");
    let (_primary, primary_addr) = spawn_primary(primary_dir.path());
    let mut primary = TsbClient::connect(primary_addr).expect("connect primary");

    let mut expect = BTreeMap::new();
    write_batch(&mut primary, &mut expect, "a", 16, 48);

    let (mut replica, replica_addr) = spawn_replica(replica_dir.path(), primary_addr);
    drop(wait_converged(replica_addr, &expect));

    // SIGKILL mid-life: no flush, no clean shutdown.
    replica.0.kill().expect("kill -9 replica");
    replica.0.wait().expect("reap replica");

    // The primary keeps committing while the replica is dead.
    write_batch(&mut primary, &mut expect, "b", 16, 48);

    // A restarted replica must resume from its local log copy and catch up.
    let (_replica2, replica_addr2) = spawn_replica(replica_dir.path(), primary_addr);
    let mut replica = wait_converged(replica_addr2, &expect);
    assert_replica_matches(&mut replica, &expect);
}

#[test]
fn checkpoint_reset_while_replica_down_forces_wire_rebase() {
    let primary_dir = TempDir::new("rebase-p");
    let replica_dir = TempDir::new("rebase-r");
    let (mut primary_proc, primary_addr) = spawn_primary(primary_dir.path());
    let mut primary = TsbClient::connect(primary_addr).expect("connect primary");

    let mut expect = BTreeMap::new();
    write_batch(&mut primary, &mut expect, "a", 16, 48);

    let (mut replica, replica_addr) = spawn_replica(replica_dir.path(), primary_addr);
    drop(wait_converged(replica_addr, &expect));
    replica.0.kill().expect("kill -9 replica");
    replica.0.wait().expect("reap replica");

    // Commit more while the replica is down, then shut the primary down
    // cleanly: that checkpoints and resets the log, discarding the records
    // the replica still needed.
    write_batch(&mut primary, &mut expect, "b", 16, 48);
    primary.shutdown_server().expect("shutdown primary");
    primary_proc.0.wait().expect("reap primary");
    drop(primary);

    let (_primary2, primary_addr2) = spawn_primary(primary_dir.path());
    let mut primary = TsbClient::connect(primary_addr2).expect("reconnect primary");
    write_batch(&mut primary, &mut expect, "c", 16, 48);

    // The restarted replica's cursor predates the reset: the wire answer
    // is needs_rebase, and the runner must re-bootstrap from a fresh base.
    let (_replica2, replica_addr2) = spawn_replica(replica_dir.path(), primary_addr2);
    let mut replica = wait_converged(replica_addr2, &expect);
    assert_replica_matches(&mut replica, &expect);
}
