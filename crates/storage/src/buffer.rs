//! A buffer pool (page cache) over the magnetic store.
//!
//! Current nodes are read and rewritten constantly (searches, in-place key
//! splits, time splits, commit stamping), so the engine caches page images in
//! memory. The pool is a classic fixed-capacity LRU cache with write-back:
//!
//! * `get` returns the page image, reading from the device only on a miss;
//! * `put` installs a new image and marks the frame dirty;
//! * eviction writes dirty frames back to the device;
//! * `flush` writes all dirty frames (called on checkpoint / close), in
//!   ascending `PageId` order so device write traces are deterministic.
//!
//! Recency is tracked with the O(1) [`LruList`] rather than a per-frame
//! clock, so eviction does not scan the pool. The pool is what separates
//! *logical* page reads from *device* I/O in the experiments.
//!
//! ## Durability ordering (WAL-before-page)
//!
//! When the engine runs with a write-ahead log, a dirty frame must never
//! reach the device before its page image is in the log — otherwise a
//! crash could leave the store holding state the log cannot reproduce.
//! The pool does not know about the log; it enforces the ordering
//! structurally through an optional [`WalPageTable`]
//! ([`BufferPool::set_wal_table`]): both write-back sites (eviction in
//! `evict_if_needed` and [`BufferPool::flush`]) run the table's
//! `ensure_durable` barrier, which `debug_assert`s that every dirty page
//! being written was previously logged (or explicitly exempted, e.g. the
//! tree's metadata page, which is reconstructed from commit records
//! instead) and then forces the log to stable storage through its newest
//! record — the flushed-LSN rule. The assert cannot fire in the shipped
//! write path — the tree appends a page's image before its cache may
//! hold the node dirty — so it exists to catch any future write path
//! that skips the log.
//!
//! ## Thread safety and frame pinning
//!
//! The pool is `Send + Sync`: all state sits behind one mutex, and every
//! method takes `&self`. `get` returns the frame as an `Arc<Vec<u8>>` —
//! that handle **is** the pin: eviction and `discard` only drop the pool's
//! own reference, so a reader that obtained a frame can keep decoding it
//! for as long as it likes, lock-free, while the pool replaces or evicts
//! the page under other threads' feet. No copy-out, no latch held across
//! decode. Writes (`put`) install a *new* `Arc`, so pinned readers observe
//! the image they pinned, never a torn mix. Dirty write-back (eviction and
//! [`BufferPool::flush`]) happens entirely under the pool lock, atomically
//! with the frame-table update, so a concurrent `get` can never read the
//! device while a newer dirty frame exists: it either sees the frame or
//! sees the already-written-back device image.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use tsb_common::{TsbError, TsbResult};

use crate::lru::LruList;
use crate::magnetic::MagneticStore;
use crate::page::PageId;
use crate::wal::WalPageTable;

struct Frame {
    data: Arc<Vec<u8>>,
    dirty: bool,
}

struct Inner {
    frames: HashMap<PageId, Frame>,
    lru: LruList<PageId>,
    /// When present, every dirty write-back debug-asserts the
    /// WAL-before-page invariant against this table.
    wal_table: Option<Arc<WalPageTable>>,
}

/// A fixed-capacity LRU page cache with write-back.
pub struct BufferPool {
    store: Arc<MagneticStore>,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.resident_pages())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `store`.
    pub fn new(store: Arc<MagneticStore>, capacity: usize) -> Self {
        BufferPool {
            store,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                lru: LruList::new(),
                wal_table: None,
            }),
        }
    }

    /// Installs the WAL page table used to assert the WAL-before-page
    /// ordering on every dirty write-back (see the module docs).
    pub fn set_wal_table(&self, table: Arc<WalPageTable>) {
        self.inner.lock().wal_table = Some(table);
    }

    /// The underlying magnetic store.
    pub fn store(&self) -> &Arc<MagneticStore> {
        &self.store
    }

    /// Number of frames currently resident.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// The pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn evict_if_needed(&self, inner: &mut Inner) -> TsbResult<()> {
        while inner.frames.len() > self.capacity {
            let victim = inner
                .lru
                .pop_lru()
                .ok_or_else(|| TsbError::internal("buffer pool over capacity but empty"))?;
            let frame = inner
                .frames
                .remove(&victim)
                .ok_or_else(|| TsbError::internal("victim frame vanished"))?;
            if frame.dirty {
                if let Some(table) = &inner.wal_table {
                    table.ensure_durable(victim)?;
                }
                self.store.write(victim, &frame.data)?;
            }
        }
        Ok(())
    }

    /// Returns the cached image of `page` if it is resident, without
    /// touching the device or the recency order. The returned `Arc` is a
    /// pin: the bytes stay valid even if the frame is evicted afterwards.
    pub fn try_get_resident(&self, page: PageId) -> Option<Arc<Vec<u8>>> {
        let inner = self.inner.lock();
        inner.frames.get(&page).map(|f| Arc::clone(&f.data))
    }

    /// Returns the cached image of `page`, reading from the device on a miss.
    /// The returned `Arc` is a pin (see the module docs).
    pub fn get(&self, page: PageId) -> TsbResult<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&page) {
            let data = Arc::clone(&frame.data);
            inner.lru.touch(page);
            self.store.stats().record_cache_hit();
            return Ok(data);
        }
        self.store.stats().record_cache_miss();
        let data = Arc::new(self.store.read(page)?);
        inner.frames.insert(
            page,
            Frame {
                data: Arc::clone(&data),
                dirty: false,
            },
        );
        inner.lru.touch(page);
        self.evict_if_needed(&mut inner)?;
        Ok(data)
    }

    /// Installs a new image for `page` and marks it dirty. The write reaches
    /// the device on eviction or [`Self::flush`].
    pub fn put(&self, page: PageId, data: Vec<u8>) -> TsbResult<()> {
        if data.len() > self.store.capacity() {
            return Err(TsbError::EntryTooLarge {
                entry_size: data.len(),
                capacity: self.store.capacity(),
            });
        }
        let mut inner = self.inner.lock();
        inner.frames.insert(
            page,
            Frame {
                data: Arc::new(data),
                dirty: true,
            },
        );
        inner.lru.touch(page);
        self.evict_if_needed(&mut inner)?;
        Ok(())
    }

    /// Drops a page from the cache without writing it back (used when the
    /// page has been freed on the device, e.g. after an abort erasure or a
    /// node consolidation).
    pub fn discard(&self, page: PageId) {
        let mut inner = self.inner.lock();
        inner.frames.remove(&page);
        inner.lru.remove(&page);
    }

    /// Writes every dirty frame back to the device, in ascending `PageId`
    /// order so repeated runs produce identical write traces.
    pub fn flush(&self) -> TsbResult<()> {
        let mut inner = self.inner.lock();
        let mut dirty: Vec<(PageId, Arc<Vec<u8>>)> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, f)| (*id, Arc::clone(&f.data)))
            .collect();
        dirty.sort_by_key(|(id, _)| *id);
        for (id, data) in dirty {
            if let Some(table) = &inner.wal_table {
                table.ensure_durable(id)?;
            }
            self.store.write(id, &data)?;
            if let Some(frame) = inner.frames.get_mut(&id) {
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Flushes and then empties the cache.
    pub fn flush_and_clear(&self) -> TsbResult<()> {
        self.flush()?;
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.lru.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;

    fn setup(capacity: usize) -> (Arc<IoStats>, Arc<MagneticStore>, BufferPool) {
        let stats = Arc::new(IoStats::new());
        let store = Arc::new(MagneticStore::in_memory(1024, Arc::clone(&stats)));
        let pool = BufferPool::new(Arc::clone(&store), capacity);
        (stats, store, pool)
    }

    #[test]
    fn read_your_writes_through_the_cache() {
        let (_, store, pool) = setup(8);
        let p = store.allocate().unwrap();
        pool.put(p, b"cached image".to_vec()).unwrap();
        assert_eq!(*pool.get(p).unwrap(), b"cached image".to_vec());
        // Not yet on the device.
        assert_eq!(store.read(p).unwrap(), Vec::<u8>::new());
        pool.flush().unwrap();
        assert_eq!(store.read(p).unwrap(), b"cached image".to_vec());
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (_, store, pool) = setup(2);
        let mut pages = Vec::new();
        for i in 0..5u8 {
            let p = store.allocate().unwrap();
            pool.put(p, vec![i; 10]).unwrap();
            pages.push(p);
        }
        assert!(pool.resident_pages() <= 2);
        // Every page readable through the pool regardless of eviction.
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(*pool.get(*p).unwrap(), vec![i as u8; 10]);
        }
    }

    #[test]
    fn eviction_victims_follow_recency_not_insertion() {
        let (_, store, pool) = setup(2);
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        let c = store.allocate().unwrap();
        pool.put(a, b"a".to_vec()).unwrap();
        pool.put(b, b"b".to_vec()).unwrap();
        pool.get(a).unwrap(); // 'b' is now the LRU frame
        pool.put(c, b"c".to_vec()).unwrap(); // evicts 'b'
        let stats = store.stats();
        stats.reset();
        pool.get(a).unwrap();
        pool.get(c).unwrap();
        assert_eq!(stats.snapshot().cache_misses, 0, "a and c stayed resident");
        pool.get(b).unwrap();
        assert_eq!(stats.snapshot().cache_misses, 1, "b was the victim");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let (stats, store, pool) = setup(4);
        let p = store.allocate().unwrap();
        store.write(p, b"on disk").unwrap();
        stats.reset();
        pool.get(p).unwrap(); // miss
        pool.get(p).unwrap(); // hit
        pool.get(p).unwrap(); // hit
        let s = stats.snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.magnetic_reads, 1, "only the miss touched the device");
    }

    #[test]
    fn discard_drops_without_writeback() {
        let (_, store, pool) = setup(4);
        let p = store.allocate().unwrap();
        store.write(p, b"original").unwrap();
        pool.put(p, b"scratch".to_vec()).unwrap();
        pool.discard(p);
        pool.flush().unwrap();
        assert_eq!(store.read(p).unwrap(), b"original".to_vec());
    }

    #[test]
    fn oversized_put_is_rejected() {
        let (_, store, pool) = setup(4);
        let p = store.allocate().unwrap();
        let big = vec![0u8; store.capacity() + 1];
        assert!(pool.put(p, big).is_err());
    }

    #[test]
    fn pinned_frames_survive_eviction_and_concurrent_churn() {
        let (_, store, pool) = setup(2);
        let hot = store.allocate().unwrap();
        pool.put(hot, b"pinned image".to_vec()).unwrap();
        let pin = pool.get(hot).unwrap();
        assert!(pool.try_get_resident(hot).is_some());

        // Four threads churn enough pages through the 2-frame pool to evict
        // `hot` many times over, while holding and re-taking pins.
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let store = &store;
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..50u8 {
                        let p = store.allocate().unwrap();
                        pool.put(p, vec![t, i]).unwrap();
                        let local_pin = pool.get(p).unwrap();
                        assert_eq!(*local_pin, vec![t, i], "pin shows the put image");
                    }
                });
            }
        });

        // The original pin still reads the exact image it pinned, and the
        // page is still readable through the pool (from device if evicted).
        assert_eq!(*pin, b"pinned image".to_vec());
        assert_eq!(*pool.get(hot).unwrap(), b"pinned image".to_vec());
    }

    #[test]
    fn flush_and_clear_persists_everything() {
        let (_, store, pool) = setup(16);
        let mut pages = Vec::new();
        for i in 0..10u8 {
            let p = store.allocate().unwrap();
            pool.put(p, vec![i; 5]).unwrap();
            pages.push(p);
        }
        pool.flush_and_clear().unwrap();
        assert_eq!(pool.resident_pages(), 0);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(store.read(*p).unwrap(), vec![i as u8; 5]);
        }
    }
}
