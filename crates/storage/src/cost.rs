//! The storage-cost and access-time model (§3.2, §1).
//!
//! The paper parameterizes the splitting policy with an "adjustable cost
//! function", giving `CS = SpaceM · CM + SpaceO · CO` as the canonical
//! example, and motivates the two-device design with the relative access
//! times of magnetic and optical drives (optical seeks ≈ 3× slower; ~20 s to
//! robot-mount an off-line platter). [`CostModel`] packages both so the split
//! policy and the experiment harness share one set of parameters.

use std::fmt;

use tsb_common::CostParams;

use crate::stats::IoSnapshot;

/// A snapshot of space consumption on the two devices.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpaceSnapshot {
    /// Bytes occupied on the magnetic (current) store — allocated pages ×
    /// page size. The paper's `SpaceM`.
    pub magnetic_bytes: u64,
    /// Bytes occupied on the WORM (historical) store — allocated sectors ×
    /// sector size. The paper's `SpaceO`.
    pub worm_bytes: u64,
    /// Bytes of real payload on the magnetic store (diagnostic).
    pub magnetic_payload_bytes: u64,
    /// Bytes of real payload on the WORM store (diagnostic).
    pub worm_payload_bytes: u64,
}

impl SpaceSnapshot {
    /// Total device bytes across both stores.
    pub fn total_bytes(&self) -> u64 {
        self.magnetic_bytes + self.worm_bytes
    }

    /// WORM space utilization (payload / device), `None` if the WORM store is
    /// empty.
    pub fn worm_utilization(&self) -> Option<f64> {
        if self.worm_bytes == 0 {
            None
        } else {
            Some(self.worm_payload_bytes as f64 / self.worm_bytes as f64)
        }
    }

    /// Magnetic space utilization (payload / device), `None` if empty.
    pub fn magnetic_utilization(&self) -> Option<f64> {
        if self.magnetic_bytes == 0 {
            None
        } else {
            Some(self.magnetic_payload_bytes as f64 / self.magnetic_bytes as f64)
        }
    }
}

impl fmt::Display for SpaceSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "magnetic {} B ({} payload), worm {} B ({} payload)",
            self.magnetic_bytes,
            self.magnetic_payload_bytes,
            self.worm_bytes,
            self.worm_payload_bytes
        )
    }
}

/// Estimated access cost of a batch of operations, in milliseconds.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct AccessCost {
    /// Milliseconds spent on magnetic-device accesses.
    pub magnetic_ms: f64,
    /// Milliseconds spent on WORM-device accesses.
    pub worm_ms: f64,
}

impl AccessCost {
    /// Total milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.magnetic_ms + self.worm_ms
    }
}

/// The storage cost function and device access-time model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    params: CostParams,
}

impl CostModel {
    /// Creates a model from the shared [`CostParams`].
    pub fn new(params: CostParams) -> Self {
        CostModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The paper's total storage cost `CS = SpaceM · CM + SpaceO · CO`.
    pub fn storage_cost(&self, space: &SpaceSnapshot) -> f64 {
        self.params
            .storage_cost(space.magnetic_bytes, space.worm_bytes)
    }

    /// Storage cost of hypothetical byte counts (used by the cost-based split
    /// policy to compare candidate splits before performing them).
    pub fn storage_cost_of(&self, magnetic_bytes: u64, worm_bytes: u64) -> f64 {
        self.params.storage_cost(magnetic_bytes, worm_bytes)
    }

    /// Estimated access time for the *logical node accesses* in an I/O
    /// snapshot: each current-node access costs one magnetic access, each
    /// historical-node access costs one WORM access (plus the optional
    /// platter-mount charge, amortized per access when enabled).
    pub fn access_cost(&self, io: &IoSnapshot) -> AccessCost {
        AccessCost {
            magnetic_ms: io.node_accesses_current as f64 * self.params.magnetic_access_ms,
            worm_ms: io.node_accesses_historical as f64
                * (self.params.worm_access_ms + self.params.worm_mount_ms),
        }
    }

    /// Estimated *device* time for physical I/O counts (reads/writes that
    /// actually reached a device, after caching).
    pub fn device_cost(&self, io: &IoSnapshot) -> AccessCost {
        let magnetic_ops = io.magnetic_reads + io.magnetic_writes;
        let worm_ops = io.worm_reads + io.worm_appends + io.worm_sector_writes;
        AccessCost {
            magnetic_ms: magnetic_ops as f64 * self.params.magnetic_access_ms,
            worm_ms: worm_ops as f64 * (self.params.worm_access_ms + self.params.worm_mount_ms),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(CostParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_cost_follows_the_paper_formula() {
        let m = CostModel::new(CostParams {
            magnetic_cost_per_byte: 10.0,
            worm_cost_per_byte: 1.0,
            ..CostParams::default()
        });
        let space = SpaceSnapshot {
            magnetic_bytes: 1000,
            worm_bytes: 5000,
            magnetic_payload_bytes: 800,
            worm_payload_bytes: 4900,
        };
        assert_eq!(m.storage_cost(&space), 1000.0 * 10.0 + 5000.0 * 1.0);
        assert_eq!(m.storage_cost_of(0, 100), 100.0);
        assert_eq!(space.total_bytes(), 6000);
        assert!((space.worm_utilization().unwrap() - 0.98).abs() < 1e-9);
        assert!((space.magnetic_utilization().unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn access_cost_weights_devices_differently() {
        let m = CostModel::new(CostParams {
            magnetic_access_ms: 10.0,
            worm_access_ms: 30.0,
            worm_mount_ms: 0.0,
            ..CostParams::default()
        });
        let io = IoSnapshot {
            node_accesses_current: 4,
            node_accesses_historical: 2,
            ..IoSnapshot::default()
        };
        let c = m.access_cost(&io);
        assert_eq!(c.magnetic_ms, 40.0);
        assert_eq!(c.worm_ms, 60.0);
        assert_eq!(c.total_ms(), 100.0);
    }

    #[test]
    fn device_cost_counts_physical_io() {
        let m = CostModel::default();
        let io = IoSnapshot {
            magnetic_reads: 3,
            magnetic_writes: 1,
            worm_reads: 2,
            worm_appends: 1,
            ..IoSnapshot::default()
        };
        let c = m.device_cost(&io);
        assert!(c.magnetic_ms > 0.0);
        assert!(
            c.worm_ms > c.magnetic_ms,
            "optical ops cost more per access"
        );
    }

    #[test]
    fn empty_space_has_no_utilization() {
        let s = SpaceSnapshot::default();
        assert_eq!(s.worm_utilization(), None);
        assert_eq!(s.magnetic_utilization(), None);
        assert_eq!(s.total_bytes(), 0);
    }
}
