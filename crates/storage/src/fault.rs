//! Deterministic fault injection for crash-recovery testing.
//!
//! A [`FaultInjector`] is shared (via `Arc`) between the stores and the
//! write-ahead log of one engine instance. Every durable write site asks it
//! for permission ([`FaultInjector::check`]) before touching the device.
//! Once the injector *trips* — either because a configured number of write
//! operations has elapsed ([`FaultInjector::fail_after_writes`]) or because
//! execution reached a configured [`CrashPoint`] — **every** subsequent
//! check fails forever with an injected I/O error. That models a machine
//! losing power: the process's in-memory state survives (and is garbage),
//! but nothing further reaches any device.
//!
//! The recovery test suite then re-opens the on-disk files with fresh
//! stores (no injector) and demands that [`recovery`](../wal/index.html)
//! reconstructs a tree that verifies and matches the oracle's durable
//! prefix.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tsb_common::{TsbError, TsbResult};

/// The instrumented durable-write stages at which a crash can be injected.
///
/// Each variant names one class of device write in the engine's write path;
/// the recovery test matrix crashes at every one of them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPoint {
    /// A page write reaching the magnetic store (buffer-pool eviction or
    /// flush write-back).
    MagneticWrite,
    /// The magnetic store's superblock sync during a checkpoint.
    MagneticSync,
    /// A historical-node append reaching the WORM store (a time split's
    /// migration).
    WormAppend,
    /// A record append reaching the write-ahead log (page image or commit
    /// fence).
    WalAppend,
    /// The WAL's fsync (a group-commit drain, mid-capture: the crash lands
    /// on the group-commit thread before the device sync is issued).
    WalSync,
    /// The window between the WAL fsync completing and the durable-LSN
    /// watermark being published: the crash kills the group-commit thread
    /// holding commits that are durable on the device but were never
    /// acknowledged to any waiter.
    WalSyncPublish,
    /// The checkpoint record itself — the crash lands after the full flush
    /// succeeded but before the checkpoint fence is in the log.
    WalCheckpoint,
    /// A two-phase-commit prepare record reaching a participant shard's
    /// WAL — the crash lands after k of n prepares, leaving the remaining
    /// participants unprepared.
    WalPrepare,
    /// The coordinator's two-phase-commit decision record reaching its
    /// WAL — the crash lands after every prepare is durable but before the
    /// commit decision is logged.
    WalDecision,
    /// The window after the coordinator's decision is durable but before
    /// any participant has stamped (acked) its local commit — recovery must
    /// roll the prepared writes forward from the decision alone.
    TwoPcAck,
}

/// Every crash point, in write-path order (the recovery-stress matrix).
pub const ALL_CRASH_POINTS: &[CrashPoint] = &[
    CrashPoint::MagneticWrite,
    CrashPoint::MagneticSync,
    CrashPoint::WormAppend,
    CrashPoint::WalAppend,
    CrashPoint::WalSync,
    CrashPoint::WalSyncPublish,
    CrashPoint::WalCheckpoint,
    CrashPoint::WalPrepare,
    CrashPoint::WalDecision,
    CrashPoint::TwoPcAck,
];

impl CrashPoint {
    /// Parses the identifier used by the CI matrix (the Debug name,
    /// case-insensitive, dashes tolerated).
    pub fn parse(s: &str) -> Option<CrashPoint> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        ALL_CRASH_POINTS
            .iter()
            .copied()
            .find(|p| format!("{p:?}").to_ascii_lowercase() == norm)
    }
}

/// A shared kill switch consulted by every durable write site.
///
/// Construct one, wire it into the stores and the WAL with their
/// `set_fault_injector` methods, and arm it with
/// [`fail_after_writes`](Self::fail_after_writes) and/or
/// [`crash_at`](Self::crash_at). With no arming it never fires and costs
/// one atomic load per write.
#[derive(Debug)]
pub struct FaultInjector {
    /// Writes remaining before the injector trips (`u64::MAX` = disarmed).
    writes_remaining: AtomicU64,
    /// Crash point to trip at, encoded as index into [`ALL_CRASH_POINTS`]
    /// (`u64::MAX` = disarmed).
    point: AtomicU64,
    /// How many occurrences of the armed crash point to let through first.
    point_skips: AtomicU64,
    tripped: AtomicBool,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultInjector {
    /// Creates a disarmed injector.
    pub fn new() -> Self {
        FaultInjector {
            writes_remaining: AtomicU64::new(u64::MAX),
            point: AtomicU64::new(u64::MAX),
            point_skips: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// Arms the write counter: the `n + 1`-th checked write (of any kind)
    /// trips the injector.
    pub fn fail_after_writes(&self, n: u64) {
        self.writes_remaining.store(n, Ordering::SeqCst);
    }

    /// Arms a crash point: the first time `point` is reached after `skip`
    /// earlier occurrences, the injector trips.
    pub fn crash_at(&self, point: CrashPoint, skip: u64) {
        let idx = ALL_CRASH_POINTS
            .iter()
            .position(|p| *p == point)
            .expect("point is in ALL_CRASH_POINTS") as u64;
        self.point_skips.store(skip, Ordering::SeqCst);
        self.point.store(idx, Ordering::SeqCst);
    }

    /// Whether the injector has fired. After this returns `true`, every
    /// subsequent [`check`](Self::check) errors.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    fn injected_error() -> TsbError {
        TsbError::Io(std::io::Error::other("injected crash (fault injector)"))
    }

    /// Consulted by every instrumented durable write site, with the site's
    /// crash point. Errors if the injector has tripped (or trips now).
    pub fn check(&self, point: CrashPoint) -> TsbResult<()> {
        if self.tripped.load(Ordering::SeqCst) {
            return Err(Self::injected_error());
        }
        // Armed crash point?
        let armed = self.point.load(Ordering::SeqCst);
        if armed != u64::MAX && ALL_CRASH_POINTS[armed as usize] == point {
            let skips = self.point_skips.load(Ordering::SeqCst);
            if skips == 0 {
                self.tripped.store(true, Ordering::SeqCst);
                return Err(Self::injected_error());
            }
            self.point_skips.store(skips - 1, Ordering::SeqCst);
        }
        // Armed write budget?
        let remaining = self.writes_remaining.load(Ordering::SeqCst);
        if remaining != u64::MAX {
            if remaining == 0 {
                self.tripped.store(true, Ordering::SeqCst);
                return Err(Self::injected_error());
            }
            self.writes_remaining.store(remaining - 1, Ordering::SeqCst);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_never_fires() {
        let inj = FaultInjector::new();
        for _ in 0..10_000 {
            inj.check(CrashPoint::MagneticWrite).unwrap();
        }
        assert!(!inj.tripped());
    }

    #[test]
    fn write_budget_trips_permanently() {
        let inj = FaultInjector::new();
        inj.fail_after_writes(3);
        for _ in 0..3 {
            inj.check(CrashPoint::WalAppend).unwrap();
        }
        assert!(inj.check(CrashPoint::MagneticWrite).is_err());
        assert!(inj.tripped());
        // Dead forever, for every site.
        for p in ALL_CRASH_POINTS {
            assert!(inj.check(*p).is_err());
        }
    }

    #[test]
    fn crash_point_skips_then_trips() {
        let inj = FaultInjector::new();
        inj.crash_at(CrashPoint::WormAppend, 2);
        // Other points never trip it.
        inj.check(CrashPoint::WalAppend).unwrap();
        inj.check(CrashPoint::WormAppend).unwrap();
        inj.check(CrashPoint::WormAppend).unwrap();
        assert!(inj.check(CrashPoint::WormAppend).is_err());
        assert!(inj.tripped());
        assert!(inj.check(CrashPoint::WalAppend).is_err());
    }

    #[test]
    fn crash_point_names_parse() {
        for p in ALL_CRASH_POINTS {
            assert_eq!(CrashPoint::parse(&format!("{p:?}")), Some(*p));
        }
        assert_eq!(CrashPoint::parse("wal-append"), Some(CrashPoint::WalAppend));
        assert_eq!(CrashPoint::parse("nope"), None);
    }
}
