//! # tsb-storage
//!
//! The two-device storage substrate required by the Time-Split B-tree
//! (Lomet & Salzberg, SIGMOD 1989):
//!
//! * [`MagneticStore`] — the **current database** device: an erasable,
//!   random-access, page-addressed store (in-memory or file-backed). Pages
//!   can be allocated, rewritten in place, and freed, which is what permits
//!   "normal" B-tree node splitting and the erasure of aborted-transaction
//!   data (§1, §5).
//! * [`WormStore`] — the **historical database** device: an append-only,
//!   sector-granular write-once store. Any attempt to rewrite a sector is an
//!   error ([`tsb_common::TsbError::WormRewrite`]), reproducing the "burned
//!   error-correcting code" property the paper describes (§1). Historical
//!   nodes of arbitrary length are appended and addressed by
//!   `(offset, length)` exactly as §3.4 prescribes; the store tracks payload
//!   bytes vs. sectors consumed so experiments can report sector utilization.
//! * [`BufferPool`] — an LRU page cache over the magnetic store with pin
//!   counts and write-back of dirty pages.
//! * [`IoStats`] — cross-cutting I/O counters (reads, writes, appends, cache
//!   hits/misses) used by the access-cost experiments.
//! * [`CostModel`] — the paper's storage cost function
//!   `CS = SpaceM · CM + SpaceO · CO` (§3.2) plus a simple device access-time
//!   model (optical seeks ≈ 3× magnetic, optional robot mount time).
//! * [`Wal`] — a checksummed, length-prefixed physical redo log for the
//!   magnetic store, with torn-tail repair, checkpoint fencing, and a
//!   configurable commit fsync policy (see [`wal`]). The WORM store needs
//!   no log — write-once hardware is its own durability — so the WAL is
//!   what makes the *erasable* half of the two-device design crash-safe.
//! * [`FaultInjector`] / [`CrashPoint`] — deterministic crash injection
//!   consulted by every durable write site, so recovery is adversarially
//!   testable rather than hopefully correct.
//!
//! Everything is deliberately synchronous and simulator-grade: the goal is
//! faithful *behaviour* (erasability, write-once-ness, sector granularity,
//! space accounting), not kernel-bypass performance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod cost;
pub mod fault;
pub mod lru;
pub mod magnetic;
pub mod page;
pub mod replication;
pub mod stats;
pub mod wal;
pub mod worm;

pub use buffer::BufferPool;
pub use cost::{AccessCost, CostModel, SpaceSnapshot};
pub use fault::{CrashPoint, FaultInjector, ALL_CRASH_POINTS};
pub use lru::LruList;
pub use magnetic::MagneticStore;
pub use page::{HistAddr, PageId};
pub use replication::{TailPoll, WalTailer, DEFAULT_BATCH_BYTES};
pub use stats::{IoSnapshot, IoStats};
pub use wal::{Lsn, PageOp, Wal, WalPageTable, WalRecord, WalScan};
pub use worm::{SectorId, WormStore};
