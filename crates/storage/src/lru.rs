//! An O(1) least-recently-used ordering over hashable keys.
//!
//! Both caches in the engine — the [`BufferPool`](crate::BufferPool)'s page
//! frames and `tsb-core`'s decoded-node cache — need the same recency
//! bookkeeping: *touch* on every access, *insert* on fill, *remove* on
//! discard, and *pop the coldest* on eviction, each in constant time. The
//! classic intrusive doubly-linked list over a slab does exactly that
//! without per-operation allocation; a `HashMap` maps keys to slab slots.
//!
//! This replaces the seed's "scan every frame for the minimum tick" victim
//! search, which made eviction O(n) per fill once a pool was warm.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Link<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A constant-time LRU ordering. Tracks *order only*; callers keep the
/// associated values in their own map keyed by `K`.
#[derive(Debug)]
pub struct LruList<K> {
    slots: Vec<Link<K>>,
    free: Vec<usize>,
    index: HashMap<K, usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
}

impl<K: Eq + Hash + Clone> Default for LruList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruList<K> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LruList {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Marks `key` most recently used, inserting it if absent.
    pub fn touch(&mut self, key: K) {
        if let Some(&slot) = self.index.get(&key) {
            if self.head != slot {
                self.unlink(slot);
                self.link_front(slot);
            }
            return;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot].key = key.clone();
                slot
            }
            None => {
                self.slots.push(Link {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.link_front(slot);
    }

    /// Stops tracking `key`. Returns whether it was tracked.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.index.remove(key) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Returns the least recently used key without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.slots[self.tail].key)
        }
    }

    /// Removes and returns the least recently used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let key = self.slots[slot].key.clone();
        self.unlink(slot);
        self.index.remove(&key);
        self.free.push(slot);
        Some(key)
    }

    /// Drops all tracked keys.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_least_recently_used() {
        let mut lru = LruList::new();
        for k in [1, 2, 3] {
            lru.touch(k);
        }
        lru.touch(1); // order (cold -> hot): 2, 3, 1
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(3));
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut lru = LruList::new();
        for k in 0..100 {
            lru.touch(k);
        }
        assert!(lru.remove(&50));
        assert!(!lru.remove(&50));
        assert!(!lru.contains(&50));
        assert_eq!(lru.len(), 99);
        // Freed slot gets reused without growing the slab.
        let slots_before = lru.slots.len();
        lru.touch(1000);
        assert_eq!(lru.slots.len(), slots_before);
        assert_eq!(lru.pop_lru(), Some(0));
    }

    #[test]
    fn touch_moves_to_front_and_clear_resets() {
        let mut lru = LruList::new();
        lru.touch("a");
        lru.touch("b");
        lru.touch("a"); // "b" is now coldest
        assert_eq!(lru.pop_lru(), Some("b"));
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut lru = LruList::new();
        lru.touch(7);
        lru.touch(7);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.pop_lru(), Some(7));
        assert!(lru.pop_lru().is_none());
        lru.touch(8);
        assert!(lru.remove(&8));
        assert!(lru.pop_lru().is_none());
    }
}
