//! The magnetic-disk (current database) simulator.
//!
//! An erasable, random-access, page-addressed store. Pages have a fixed size,
//! can be allocated, rewritten in place, and freed (freed pages are recycled
//! by later allocations). This is the device property the paper requires of
//! the current database: "the current database must be stored on an erasable
//! medium to permit it to be flexibly updated and reorganized" (§1).
//!
//! Two backends are provided:
//!
//! * **in-memory** — the default for tests, examples, and experiments;
//! * **file-backed** — a single flat file of `page_size` slots, demonstrating
//!   that the layout is genuinely persistent (the free list and allocation
//!   count are rebuilt from a tiny superblock region at slot 0).
//!
//! All methods take `&self`; interior mutability (a `parking_lot::Mutex`)
//! keeps the public API convenient for concurrent readers.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use tsb_common::{TsbError, TsbResult};

use crate::fault::{CrashPoint, FaultInjector};
use crate::page::PageId;
use crate::stats::IoStats;

/// Superblock layout (page 0 of the file backend):
/// magic (8) | page_size (8) | page_count (8) | free_count (8) | free list (8 each)
const MAGIC: u64 = 0x5453_4253_544f_5245; // "TSBSTORE"

/// Bytes of each page reserved for the backend's own bookkeeping (the file
/// backend stores a 4-byte payload-length prefix; the rest is headroom).
/// Callers should size node payloads against [`MagneticStore::capacity`].
const PAGE_OVERHEAD: usize = 8;

enum Backend {
    Memory {
        pages: Vec<Option<Vec<u8>>>,
    },
    File {
        file: File,
        page_count: u64,
        allocated: BTreeSet<u64>,
        payload_lens: std::collections::BTreeMap<u64, u32>,
    },
}

struct Inner {
    backend: Backend,
    free_list: Vec<u64>,
    /// Bytes of real payload currently stored per allocated page (used for
    /// space accounting; pages always *occupy* `page_size` on the device).
    payload_bytes: u64,
    /// Optional crash-injection hook consulted by `write` and `sync`.
    injector: Option<Arc<FaultInjector>>,
}

/// The erasable, random-access current-database store.
pub struct MagneticStore {
    page_size: usize,
    inner: Mutex<Inner>,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for MagneticStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MagneticStore")
            .field("page_size", &self.page_size)
            .field("allocated_pages", &self.allocated_pages())
            .finish()
    }
}

impl MagneticStore {
    /// Creates an in-memory store with the given page size.
    pub fn in_memory(page_size: usize, stats: Arc<IoStats>) -> Self {
        MagneticStore {
            page_size,
            inner: Mutex::new(Inner {
                backend: Backend::Memory { pages: Vec::new() },
                free_list: Vec::new(),
                payload_bytes: 0,
                injector: None,
            }),
            stats,
        }
    }

    /// Opens (or creates) a file-backed store.
    ///
    /// Page 0 of the file is reserved for the superblock; user pages start at
    /// slot 1. Payload-byte accounting restarts at zero on reopen (the exact
    /// payload length of each page is re-established the next time the page
    /// is written); the allocation map is restored from the superblock.
    pub fn open_file(
        path: impl AsRef<Path>,
        page_size: usize,
        stats: Arc<IoStats>,
    ) -> TsbResult<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let (page_count, allocated, free_list) = if len == 0 {
            // Fresh file: write an empty superblock.
            let store = (1u64, BTreeSet::new(), Vec::new());
            Self::write_superblock(&mut file, page_size, 1, &[])?;
            store
        } else {
            Self::read_superblock(&mut file, page_size)?
        };
        Ok(MagneticStore {
            page_size,
            inner: Mutex::new(Inner {
                backend: Backend::File {
                    file,
                    page_count,
                    allocated,
                    payload_lens: std::collections::BTreeMap::new(),
                },
                free_list,
                payload_bytes: 0,
                injector: None,
            }),
            stats,
        })
    }

    /// Wires a fault injector into the write and sync paths (tests only).
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        self.inner.lock().injector = Some(injector);
    }

    fn write_superblock(
        file: &mut File,
        page_size: usize,
        page_count: u64,
        free_list: &[u64],
    ) -> TsbResult<()> {
        let mut buf = Vec::with_capacity(page_size);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&(page_size as u64).to_le_bytes());
        buf.extend_from_slice(&page_count.to_le_bytes());
        buf.extend_from_slice(&(free_list.len() as u64).to_le_bytes());
        for f in free_list {
            buf.extend_from_slice(&f.to_le_bytes());
        }
        if buf.len() > page_size {
            return Err(TsbError::internal(
                "free list no longer fits in the superblock page",
            ));
        }
        buf.resize(page_size, 0);
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&buf)?;
        Ok(())
    }

    #[allow(clippy::type_complexity)]
    fn read_superblock(
        file: &mut File,
        page_size: usize,
    ) -> TsbResult<(u64, BTreeSet<u64>, Vec<u64>)> {
        let mut buf = vec![0u8; page_size];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut buf)?;
        let read_u64 = |buf: &[u8], at: usize| -> u64 {
            let mut a = [0u8; 8];
            a.copy_from_slice(&buf[at..at + 8]);
            u64::from_le_bytes(a)
        };
        if read_u64(&buf, 0) != MAGIC {
            return Err(TsbError::corruption("bad magnetic store magic"));
        }
        let stored_page_size = read_u64(&buf, 8);
        if stored_page_size != page_size as u64 {
            return Err(TsbError::config(format!(
                "store was created with page_size {stored_page_size}, reopened with {page_size}"
            )));
        }
        let page_count = read_u64(&buf, 16);
        let free_count = read_u64(&buf, 24) as usize;
        let mut free_list = Vec::with_capacity(free_count);
        for i in 0..free_count {
            free_list.push(read_u64(&buf, 32 + i * 8));
        }
        let mut allocated = BTreeSet::new();
        for p in 1..page_count {
            if !free_list.contains(&p) {
                allocated.insert(p);
            }
        }
        Ok((page_count, allocated, free_list))
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Usable payload capacity of a page in bytes (`page_size` minus a small
    /// fixed overhead reserved for backend bookkeeping).
    pub fn capacity(&self) -> usize {
        self.page_size - PAGE_OVERHEAD
    }

    /// The I/O statistics sink shared with the rest of the engine.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Allocates a fresh (or recycled) page and returns its id.
    pub fn allocate(&self) -> TsbResult<PageId> {
        let mut inner = self.inner.lock();
        self.stats.record_magnetic_alloc();
        if let Some(recycled) = inner.free_list.pop() {
            match &mut inner.backend {
                Backend::Memory { pages } => {
                    pages[recycled as usize] = Some(Vec::new());
                }
                Backend::File { allocated, .. } => {
                    allocated.insert(recycled);
                }
            }
            return Ok(PageId(recycled));
        }
        match &mut inner.backend {
            Backend::Memory { pages } => {
                pages.push(Some(Vec::new()));
                Ok(PageId(pages.len() as u64 - 1))
            }
            Backend::File {
                page_count,
                allocated,
                ..
            } => {
                let id = *page_count;
                *page_count += 1;
                allocated.insert(id);
                Ok(PageId(id))
            }
        }
    }

    /// Writes the page contents (must be at most [`Self::capacity`] bytes).
    pub fn write(&self, id: PageId, data: &[u8]) -> TsbResult<()> {
        if data.len() > self.capacity() {
            return Err(TsbError::EntryTooLarge {
                entry_size: data.len(),
                capacity: self.capacity(),
            });
        }
        let mut inner = self.inner.lock();
        if let Some(injector) = &inner.injector {
            injector.check(CrashPoint::MagneticWrite)?;
        }
        self.stats.record_magnetic_write();
        match &mut inner.backend {
            Backend::Memory { pages } => {
                let slot = pages
                    .get_mut(id.0 as usize)
                    .ok_or(TsbError::PageNotFound(id.0))?;
                match slot {
                    Some(existing) => {
                        let old_len = existing.len() as u64;
                        *existing = data.to_vec();
                        inner.payload_bytes = inner.payload_bytes - old_len + data.len() as u64;
                        Ok(())
                    }
                    None => Err(TsbError::PageNotFound(id.0)),
                }
            }
            Backend::File {
                file,
                page_count,
                allocated,
                payload_lens,
            } => {
                if id.0 == 0 || id.0 >= *page_count || !allocated.contains(&id.0) {
                    return Err(TsbError::PageNotFound(id.0));
                }
                let mut buf = vec![0u8; self.page_size];
                buf[..4].copy_from_slice(&(data.len() as u32).to_le_bytes());
                buf[4..4 + data.len()].copy_from_slice(data);
                file.seek(SeekFrom::Start(id.0 * self.page_size as u64))?;
                file.write_all(&buf)?;
                let old = payload_lens.insert(id.0, data.len() as u32).unwrap_or(0);
                inner.payload_bytes = inner.payload_bytes - old as u64 + data.len() as u64;
                Ok(())
            }
        }
    }

    /// Installs `data` at page `id` during crash recovery, force-allocating
    /// the page if the superblock's allocation map does not know it.
    ///
    /// Pages allocated after the last checkpoint exist only in the crashed
    /// process's memory — the superblock on disk predates them — yet the
    /// redo log carries their images. Replay calls this instead of
    /// [`Self::write`], which would reject the unknown page id. Outside
    /// recovery, [`Self::allocate`] + [`Self::write`] is the correct pair.
    pub fn restore(&self, id: PageId, data: &[u8]) -> TsbResult<()> {
        if data.len() > self.capacity() {
            return Err(TsbError::EntryTooLarge {
                entry_size: data.len(),
                capacity: self.capacity(),
            });
        }
        if id.0 == 0 {
            return Err(TsbError::internal(
                "page 0 is the superblock and cannot be restored",
            ));
        }
        let mut inner = self.inner.lock();
        inner.free_list.retain(|f| *f != id.0);
        match &mut inner.backend {
            Backend::Memory { pages } => {
                if pages.len() <= id.0 as usize {
                    pages.resize(id.0 as usize + 1, None);
                }
                // Leave an already-allocated slot in place so the payload
                // accounting in `write` sees its true old length.
                let slot = &mut pages[id.0 as usize];
                if slot.is_none() {
                    *slot = Some(Vec::new());
                }
            }
            Backend::File {
                page_count,
                allocated,
                ..
            } => {
                *page_count = (*page_count).max(id.0 + 1);
                allocated.insert(id.0);
            }
        }
        drop(inner);
        self.write(id, data)
    }

    /// Reads the page contents.
    pub fn read(&self, id: PageId) -> TsbResult<Vec<u8>> {
        let mut inner = self.inner.lock();
        self.stats.record_magnetic_read();
        match &mut inner.backend {
            Backend::Memory { pages } => pages
                .get(id.0 as usize)
                .and_then(|p| p.clone())
                .ok_or(TsbError::PageNotFound(id.0)),
            Backend::File {
                file,
                page_count,
                allocated,
                ..
            } => {
                if id.0 == 0 || id.0 >= *page_count || !allocated.contains(&id.0) {
                    return Err(TsbError::PageNotFound(id.0));
                }
                let mut buf = vec![0u8; self.page_size];
                file.seek(SeekFrom::Start(id.0 * self.page_size as u64))?;
                file.read_exact(&mut buf)?;
                let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                if len > self.page_size - 4 {
                    return Err(TsbError::corruption(format!(
                        "page {} claims {len} payload bytes",
                        id.0
                    )));
                }
                Ok(buf[4..4 + len].to_vec())
            }
        }
    }

    /// Frees a page; its id may be recycled by a later allocation.
    pub fn free(&self, id: PageId) -> TsbResult<()> {
        let mut inner = self.inner.lock();
        self.stats.record_magnetic_free();
        match &mut inner.backend {
            Backend::Memory { pages } => {
                let slot = pages
                    .get_mut(id.0 as usize)
                    .ok_or(TsbError::PageNotFound(id.0))?;
                match slot.take() {
                    Some(old) => {
                        inner.payload_bytes -= old.len() as u64;
                        inner.free_list.push(id.0);
                        Ok(())
                    }
                    None => Err(TsbError::PageNotFound(id.0)),
                }
            }
            Backend::File {
                allocated,
                payload_lens,
                ..
            } => {
                if !allocated.remove(&id.0) {
                    return Err(TsbError::PageNotFound(id.0));
                }
                let old = payload_lens.remove(&id.0).unwrap_or(0);
                inner.payload_bytes -= old as u64;
                inner.free_list.push(id.0);
                Ok(())
            }
        }
    }

    /// Persists allocation metadata (file backend only; no-op in memory).
    pub fn sync(&self) -> TsbResult<()> {
        let mut inner = self.inner.lock();
        if let Some(injector) = &inner.injector {
            injector.check(CrashPoint::MagneticSync)?;
        }
        let free_list = inner.free_list.clone();
        if let Backend::File {
            file, page_count, ..
        } = &mut inner.backend
        {
            let page_count = *page_count;
            Self::write_superblock(file, self.page_size, page_count, &free_list)?;
            file.sync_all()?;
        }
        Ok(())
    }

    /// Number of currently allocated pages.
    pub fn allocated_pages(&self) -> u64 {
        let inner = self.inner.lock();
        match &inner.backend {
            Backend::Memory { pages } => pages.iter().filter(|p| p.is_some()).count() as u64,
            Backend::File { allocated, .. } => allocated.len() as u64,
        }
    }

    /// Device bytes occupied: allocated pages × page size. This is the
    /// paper's `SpaceM`.
    pub fn device_bytes(&self) -> u64 {
        self.allocated_pages() * self.page_size as u64
    }

    /// Bytes of real payload stored in allocated pages (≤ `device_bytes`).
    pub fn payload_bytes(&self) -> u64 {
        self.inner.lock().payload_bytes
    }

    /// Ids of all currently allocated pages (diagnostics / verification).
    pub fn allocated_page_ids(&self) -> Vec<PageId> {
        let inner = self.inner.lock();
        match &inner.backend {
            Backend::Memory { pages } => pages
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.as_ref().map(|_| PageId(i as u64)))
                .collect(),
            Backend::File { allocated, .. } => allocated.iter().copied().map(PageId).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_store() -> MagneticStore {
        MagneticStore::in_memory(4096, Arc::new(IoStats::new()))
    }

    #[test]
    fn allocate_write_read_free_cycle() {
        let store = mem_store();
        let p = store.allocate().unwrap();
        store.write(p, b"hello").unwrap();
        assert_eq!(store.read(p).unwrap(), b"hello");
        // Rewrite in place — the defining property of the erasable store.
        store.write(p, b"goodbye").unwrap();
        assert_eq!(store.read(p).unwrap(), b"goodbye");
        assert_eq!(store.allocated_pages(), 1);
        assert_eq!(store.device_bytes(), 4096);
        assert_eq!(store.payload_bytes(), 7);

        store.free(p).unwrap();
        assert_eq!(store.allocated_pages(), 0);
        assert!(store.read(p).is_err());
        // The freed page id is recycled.
        let p2 = store.allocate().unwrap();
        assert_eq!(p2, p);
    }

    #[test]
    fn oversized_write_is_rejected() {
        let store = MagneticStore::in_memory(128, Arc::new(IoStats::new()));
        let p = store.allocate().unwrap();
        let big = vec![0u8; 129];
        assert!(matches!(
            store.write(p, &big),
            Err(TsbError::EntryTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_page_errors() {
        let store = mem_store();
        assert!(matches!(
            store.read(PageId(99)),
            Err(TsbError::PageNotFound(99))
        ));
        assert!(store.write(PageId(99), b"x").is_err());
        assert!(store.free(PageId(99)).is_err());
        let p = store.allocate().unwrap();
        store.free(p).unwrap();
        // Double free is an error.
        assert!(store.free(p).is_err());
    }

    #[test]
    fn stats_are_recorded() {
        let stats = Arc::new(IoStats::new());
        let store = MagneticStore::in_memory(1024, Arc::clone(&stats));
        let p = store.allocate().unwrap();
        store.write(p, b"abc").unwrap();
        store.read(p).unwrap();
        store.free(p).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.magnetic_allocs, 1);
        assert_eq!(s.magnetic_writes, 1);
        assert_eq!(s.magnetic_reads, 1);
        assert_eq!(s.magnetic_frees, 1);
    }

    #[test]
    fn file_backend_round_trips_and_reopens() {
        let dir = std::env::temp_dir().join(format!("tsb-mag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        let _ = std::fs::remove_file(&path);

        let stats = Arc::new(IoStats::new());
        let (p1, p2);
        {
            let store = MagneticStore::open_file(&path, 512, Arc::clone(&stats)).unwrap();
            p1 = store.allocate().unwrap();
            p2 = store.allocate().unwrap();
            store.write(p1, b"first page").unwrap();
            store.write(p2, b"second page").unwrap();
            store.free(p2).unwrap();
            store.sync().unwrap();
        }
        {
            let store = MagneticStore::open_file(&path, 512, Arc::clone(&stats)).unwrap();
            assert_eq!(store.read(p1).unwrap(), b"first page");
            assert!(store.read(p2).is_err(), "freed page stays freed");
            // Freed page is recycled on reopen.
            let p3 = store.allocate().unwrap();
            assert_eq!(p3, p2);
            // Wrong page size is rejected.
            assert!(MagneticStore::open_file(&path, 1024, Arc::new(IoStats::new())).is_err());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_force_allocates_unknown_pages() {
        let store = mem_store();
        // Page 5 was never allocated here (it existed only in the crashed
        // process's memory); replay can still install its image.
        store.restore(PageId(5), b"replayed image").unwrap();
        assert_eq!(store.read(PageId(5)).unwrap(), b"replayed image");
        // Restoring over an allocated page behaves like a write.
        let p = store.allocate().unwrap();
        store.write(p, b"old").unwrap();
        store.restore(p, b"new").unwrap();
        assert_eq!(store.read(p).unwrap(), b"new");
        // A restored page is no longer on the free list.
        let q = store.allocate().unwrap();
        store.free(q).unwrap();
        store.restore(q, b"back").unwrap();
        let next = store.allocate().unwrap();
        assert_ne!(next, q, "restored page must not be recycled");
        // The superblock page is off limits.
        assert!(store.restore(PageId(0), b"x").is_err());
    }

    #[test]
    fn fault_injector_kills_writes_and_sync() {
        use crate::fault::{CrashPoint, FaultInjector};
        let store = mem_store();
        let p = store.allocate().unwrap();
        let injector = Arc::new(FaultInjector::new());
        store.set_fault_injector(Arc::clone(&injector));
        store.write(p, b"before").unwrap();
        injector.crash_at(CrashPoint::MagneticWrite, 0);
        assert!(store.write(p, b"after").is_err());
        assert!(store.sync().is_err(), "tripped injector kills every site");
        assert_eq!(store.read(p).unwrap(), b"before", "reads still served");
    }

    #[test]
    fn many_pages_round_trip() {
        let store = mem_store();
        let mut ids = Vec::new();
        for i in 0..100u64 {
            let p = store.allocate().unwrap();
            store.write(p, format!("payload {i}").as_bytes()).unwrap();
            ids.push(p);
        }
        for (i, p) in ids.iter().enumerate() {
            assert_eq!(store.read(*p).unwrap(), format!("payload {i}").as_bytes());
        }
        assert_eq!(store.allocated_pages(), 100);
        assert_eq!(store.allocated_page_ids().len(), 100);
    }
}
