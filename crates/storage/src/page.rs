//! Addresses of stored nodes on the two devices.
//!
//! Current nodes live in fixed-size pages on the magnetic store and are
//! addressed by [`PageId`]. Historical nodes are variable-length byte strings
//! appended to the WORM store and are addressed by [`HistAddr`] — "the index
//! pointer to a historical node needs only to record its address on the
//! optical disk and its length" (§3.4).

use std::fmt;

use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::TsbResult;

/// Identifier of a fixed-size page on the magnetic (current) store.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// The raw page number.
    pub const fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{}", self.0)
    }
}

/// Address of a historical node on the WORM store: byte offset plus length.
///
/// The offset is always sector-aligned (appends start on a sector boundary);
/// the length is the exact payload length, which is how the store knows how
/// much of the final sector is real data when computing utilization.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HistAddr {
    /// Byte offset of the first sector of the record.
    pub offset: u64,
    /// Exact payload length in bytes.
    pub len: u32,
}

impl HistAddr {
    /// Creates an address.
    pub const fn new(offset: u64, len: u32) -> Self {
        HistAddr { offset, len }
    }

    /// Encodes the address (12 bytes).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.offset);
        w.put_u32(self.len);
    }

    /// Decodes an address.
    pub fn decode(r: &mut ByteReader<'_>) -> TsbResult<Self> {
        let offset = r.get_u64()?;
        let len = r.get_u32()?;
        Ok(HistAddr { offset, len })
    }

    /// Encoded size in bytes.
    pub const fn encoded_size() -> usize {
        12
    }
}

impl fmt::Display for HistAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worm:{}+{}", self.offset, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(7).to_string(), "page:7");
        assert_eq!(PageId(7).value(), 7);
    }

    #[test]
    fn hist_addr_round_trip() {
        let a = HistAddr::new(4096, 517);
        let mut w = ByteWriter::new();
        a.encode(&mut w);
        assert_eq!(w.len(), HistAddr::encoded_size());
        let mut r = ByteReader::new(w.as_slice());
        assert_eq!(HistAddr::decode(&mut r).unwrap(), a);
        assert_eq!(a.to_string(), "worm:4096+517");
    }
}
