//! WAL shipping: tailing the live redo log for replication.
//!
//! The redo log (see [`crate::wal`]) is a self-describing logical stream —
//! LSN-ordered records, commit fences carrying full tree metadata, and a
//! replayer that rebuilds state from any checkpoint base. That makes it
//! shippable as-is: a replica that appends the primary's record bodies to
//! its own log (via [`crate::Wal::append_shipped`]) and replays them holds
//! state that is a pure function of the primary's durable prefix.
//!
//! [`WalTailer`] is the primary-side reader. It tails the log **by path**,
//! not through the engine's open file handle: a checkpoint reset replaces
//! the log file by rename (`Wal::reset_with`), so a descriptor goes stale
//! while the path always names the live generation. Each poll returns the
//! record bodies after a cursor LSN, capped by the durable watermark the
//! caller supplies — only fsynced records may ship, otherwise a primary
//! crash could roll back state a replica already serves.
//!
//! ## Surviving checkpoint resets
//!
//! A checkpoint truncates the log to a single `Checkpoint` record (the new
//! generation's base). Two cases:
//!
//! * The subscriber had already consumed everything before the fence: the
//!   new generation's first record (the checkpoint, at `cursor + 1`)
//!   continues its sequence — the reset is invisible.
//! * The subscriber was further behind: the records between its cursor and
//!   the fence are gone. The tailer reports [`TailPoll::NeedsRebase`]; the
//!   subscriber must re-base on a full image of the newest checkpoint
//!   state (see `tsb-core`'s replica engine) and resume from its LSN.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use tsb_common::TsbResult;

use crate::wal::{Lsn, Wal, WalRecord};

/// Soft cap on the total body bytes one [`WalTailer::poll`] returns. The
/// final record of a batch may push past it; a batch never splits a record.
pub const DEFAULT_BATCH_BYTES: usize = 1 << 20;

/// What one poll of the tailer produced.
#[derive(Debug)]
pub enum TailPoll {
    /// Record bodies for LSNs `(cursor, limit]`, in order, possibly empty
    /// (caught up). Each body is the on-disk encoding from
    /// [`WalRecord::encode_body`]; the embedded LSNs are contiguous.
    Batch(Vec<Vec<u8>>),
    /// The log no longer contains `cursor + 1`: a checkpoint reset
    /// discarded records the subscriber still needs. It must re-base on a
    /// checkpoint image before resuming.
    NeedsRebase,
}

/// A cursor-based reader over a live redo log file (see the module docs).
#[derive(Debug)]
pub struct WalTailer {
    path: PathBuf,
    /// Cached resume point: byte offset of the frame expected to carry
    /// `lsn`. Validated on every poll (frame must parse and match);
    /// invalidated by checkpoint resets, which trigger a full rescan.
    cursor: Option<(u64, Lsn)>,
}

impl WalTailer {
    /// Creates a tailer over the log at `path` (typically
    /// [`Wal::path`]).
    pub fn new(path: impl AsRef<Path>) -> Self {
        WalTailer {
            path: path.as_ref().to_path_buf(),
            cursor: None,
        }
    }

    /// Returns the record bodies after `after_lsn`, up to and including
    /// `limit_lsn` (the caller passes the log's durable watermark), capped
    /// near `max_bytes`. An empty batch means the subscriber is caught up.
    ///
    /// The read races benignly with the appender: a trailing frame still
    /// being written fails its length or CRC check and is simply not part
    /// of this batch (it is beyond the durable limit anyway).
    pub fn poll(
        &mut self,
        after_lsn: Lsn,
        limit_lsn: Lsn,
        max_bytes: usize,
    ) -> TsbResult<TailPoll> {
        // The cursor the subscriber wants next. Saturating: a hostile or
        // corrupt `after_lsn` of `u64::MAX` must poll as "caught up", not
        // overflow (a wire-facing path must not panic on absurd input).
        let next_lsn = after_lsn.saturating_add(1);
        // Fast path: resume from the cached offset when it still names the
        // frame for `after_lsn + 1`.
        if let Some((offset, lsn)) = self.cursor {
            if lsn == next_lsn {
                if let Some(poll) = self.poll_from(offset, after_lsn, limit_lsn, max_bytes)? {
                    return Ok(poll);
                }
                // The frame at the cached offset no longer matches — the
                // log was reset. Fall through to a full rescan.
                self.cursor = None;
            } else {
                self.cursor = None;
            }
        }

        let buf = match std::fs::read(&self.path) {
            Ok(buf) => buf,
            // Between a reset's rename and nothing else, the path always
            // exists; a missing file means the store is mid-teardown.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(TailPoll::Batch(Vec::new()))
            }
            Err(e) => return Err(e.into()),
        };
        // Locate the frame carrying `after_lsn + 1`, walking from the
        // start of the (single-generation) file.
        let mut pos = 0usize;
        let mut first = true;
        loop {
            let Some((frame_len, body)) = Wal::frame_at(&buf, pos) else {
                // The log ends before `after_lsn + 1`: caught up (or the
                // tail is still being written). Remember where the next
                // frame will land only if the sequence ran out exactly at
                // the cursor; otherwise leave the cursor cold.
                return Ok(TailPoll::Batch(Vec::new()));
            };
            let Ok((lsn, _)) = WalRecord::decode_body(body) else {
                return Ok(TailPoll::Batch(Vec::new()));
            };
            if first && lsn > next_lsn {
                // The generation starts past the subscriber's cursor: the
                // records it needs were discarded by a checkpoint reset.
                return Ok(TailPoll::NeedsRebase);
            }
            first = false;
            if lsn == next_lsn {
                return self
                    .collect(&buf, pos, after_lsn, limit_lsn, max_bytes)
                    .map(TailPoll::Batch);
            }
            pos += frame_len;
        }
    }

    /// Attempts the fast path: read from `offset` and collect if the frame
    /// there carries `after_lsn + 1`. Returns `None` when the cached
    /// offset is stale (reset happened) and a rescan is needed; returns an
    /// empty batch when the file simply has nothing past the offset yet.
    fn poll_from(
        &mut self,
        offset: u64,
        after_lsn: Lsn,
        limit_lsn: Lsn,
        max_bytes: usize,
    ) -> TsbResult<Option<TailPoll>> {
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Some(TailPoll::Batch(Vec::new())))
            }
            Err(e) => return Err(e.into()),
        };
        let file_len = file.metadata()?.len();
        if file_len < offset {
            // The file shrank: it was replaced by a reset.
            return Ok(None);
        }
        if file_len == offset {
            // Nothing appended since the last poll — but an equal-length
            // *replacement* generation is indistinguishable here. The
            // durable watermark disambiguates: if the caller says records
            // exist past the cursor yet the file did not grow past it, the
            // file must have been replaced — force the slow path. When the
            // watermark equals the cursor this really is a caught-up poll.
            if limit_lsn > after_lsn {
                return Ok(None);
            }
            return Ok(Some(TailPoll::Batch(Vec::new())));
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = Vec::with_capacity((file_len - offset) as usize);
        file.read_to_end(&mut buf)?;
        let Some((_, body)) = Wal::frame_at(&buf, 0) else {
            // Not a complete frame yet; could be a mid-append race or a
            // replaced file. If the file holds bytes past the offset that
            // do not parse, force the slow path to disambiguate.
            return Ok(None);
        };
        match WalRecord::decode_body(body) {
            Ok((lsn, _)) if lsn == after_lsn.saturating_add(1) => self
                .collect(&buf, 0, after_lsn, limit_lsn, max_bytes)
                .map(|batch| Some(TailPoll::Batch(batch))),
            _ => Ok(None),
        }
    }

    /// Collects bodies starting at `pos` (which must frame `after_lsn + 1`)
    /// while LSNs stay at or below `limit_lsn` and the batch stays under
    /// `max_bytes`, updating the cursor cache to the resume point.
    fn collect(
        &mut self,
        buf: &[u8],
        mut pos: usize,
        base_offset_hint: Lsn,
        limit_lsn: Lsn,
        max_bytes: usize,
    ) -> TsbResult<Vec<Vec<u8>>> {
        let mut expected = base_offset_hint + 1;
        let mut batch: Vec<Vec<u8>> = Vec::new();
        let mut total = 0usize;
        // `pos` is relative to `buf`; track the absolute resume offset via
        // the delta consumed. The caller's `buf` may start mid-file (fast
        // path), so remember only the relative advance and rebuild the
        // absolute offset from the cached cursor when present.
        let start_pos = pos;
        while total < max_bytes {
            let Some((frame_len, body)) = Wal::frame_at(buf, pos) else {
                break;
            };
            let Ok((lsn, _)) = WalRecord::decode_body(body) else {
                break;
            };
            if lsn != expected || lsn > limit_lsn {
                break;
            }
            batch.push(body.to_vec());
            total += body.len();
            expected = lsn + 1;
            pos += frame_len;
        }
        let consumed = (pos - start_pos) as u64;
        self.cursor = Some(match self.cursor {
            // Fast path: previous cursor held the absolute offset of
            // `start_pos`.
            Some((abs, lsn)) if lsn == base_offset_hint + 1 => (abs + consumed, expected),
            // Slow path: `buf` was the whole file, so `pos` is absolute.
            _ => (pos as u64, expected),
        });
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use tsb_common::FsyncPolicy;

    use super::*;
    use crate::page::PageId;
    use crate::stats::IoStats;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tsb-tailer-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn image(page: u64, fill: u8) -> WalRecord {
        WalRecord::PageImage {
            page: PageId(page),
            bytes: vec![fill; 24],
        }
    }

    fn commit(ts: u64) -> WalRecord {
        WalRecord::Commit {
            ts,
            worm_len: 0,
            meta: vec![0xCD; 8],
        }
    }

    fn lsns(batch: &[Vec<u8>]) -> Vec<Lsn> {
        batch
            .iter()
            .map(|b| WalRecord::decode_body(b).unwrap().0)
            .collect()
    }

    #[test]
    fn tails_records_in_order_and_in_batches() {
        let dir = temp_dir("order");
        let path = dir.join("redo.wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::create(&path, FsyncPolicy::Always, Arc::new(IoStats::new())).unwrap();
        for i in 0..5u64 {
            wal.append(&image(i, i as u8)).unwrap();
        }
        wal.append(&commit(5)).unwrap();

        let mut tailer = WalTailer::new(&path);
        let TailPoll::Batch(batch) = tailer.poll(0, wal.durable_lsn(), usize::MAX).unwrap() else {
            panic!("fresh log never needs a rebase");
        };
        assert_eq!(lsns(&batch), vec![1, 2, 3, 4, 5, 6]);

        // Caught up: empty batch, twice in a row (cursor cache path).
        for _ in 0..2 {
            let TailPoll::Batch(batch) = tailer.poll(6, wal.durable_lsn(), usize::MAX).unwrap()
            else {
                panic!("caught-up tailer never needs a rebase");
            };
            assert!(batch.is_empty());
        }

        // New appends resume from the cached offset.
        wal.append(&image(9, 9)).unwrap();
        wal.append(&commit(7)).unwrap();
        wal.sync().unwrap();
        let TailPoll::Batch(batch) = tailer.poll(6, wal.durable_lsn(), usize::MAX).unwrap() else {
            panic!("appended records never need a rebase");
        };
        assert_eq!(lsns(&batch), vec![7, 8]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_limit_holds_back_unsynced_records() {
        let dir = temp_dir("limit");
        let path = dir.join("redo.wal");
        let _ = std::fs::remove_file(&path);
        // `Os` policy: appends reach the file at fences without fsync, so
        // the durable watermark stays behind the file content.
        let wal = Wal::create(&path, FsyncPolicy::Os, Arc::new(IoStats::new())).unwrap();
        wal.append(&image(1, 1)).unwrap();
        wal.append(&commit(1)).unwrap();
        assert_eq!(wal.durable_lsn(), 0);

        let mut tailer = WalTailer::new(&path);
        let TailPoll::Batch(batch) = tailer.poll(0, wal.durable_lsn(), usize::MAX).unwrap() else {
            panic!("no rebase expected");
        };
        assert!(batch.is_empty(), "nothing durable yet");

        wal.sync().unwrap();
        let TailPoll::Batch(batch) = tailer.poll(0, wal.durable_lsn(), usize::MAX).unwrap() else {
            panic!("no rebase expected");
        };
        assert_eq!(lsns(&batch), vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_bytes_splits_batches_without_splitting_records() {
        let dir = temp_dir("bytes");
        let path = dir.join("redo.wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::create(&path, FsyncPolicy::Always, Arc::new(IoStats::new())).unwrap();
        for i in 0..10u64 {
            wal.append(&image(i, 0)).unwrap();
        }
        wal.append(&commit(1)).unwrap();

        let mut tailer = WalTailer::new(&path);
        let mut got = Vec::new();
        let mut cursor = 0;
        loop {
            let TailPoll::Batch(batch) = tailer.poll(cursor, wal.durable_lsn(), 1).unwrap() else {
                panic!("no rebase expected");
            };
            if batch.is_empty() {
                break;
            }
            assert_eq!(batch.len(), 1, "1-byte cap yields one record per batch");
            cursor = WalRecord::decode_body(batch.last().unwrap()).unwrap().0;
            got.extend(lsns(&batch));
        }
        assert_eq!(got, (1..=11).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_reset_is_seamless_when_caught_up_and_rebases_when_behind() {
        let dir = temp_dir("reset");
        let path = dir.join("redo.wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::create(&path, FsyncPolicy::Always, Arc::new(IoStats::new())).unwrap();
        wal.append(&image(1, 1)).unwrap();
        wal.append(&commit(1)).unwrap(); // LSNs 1, 2

        // A caught-up tailer rides through the reset: the checkpoint is
        // simply the next record in its sequence.
        let mut caught_up = WalTailer::new(&path);
        let TailPoll::Batch(b) = caught_up.poll(0, wal.durable_lsn(), usize::MAX).unwrap() else {
            panic!("no rebase expected");
        };
        assert_eq!(lsns(&b), vec![1, 2]);

        wal.reset_with(&WalRecord::Checkpoint {
            worm_len: 0,
            meta: vec![1],
        })
        .unwrap(); // LSN 3, alone in the new generation

        let TailPoll::Batch(b) = caught_up.poll(2, wal.durable_lsn(), usize::MAX).unwrap() else {
            panic!("caught-up tailer must survive the reset");
        };
        assert_eq!(lsns(&b), vec![3]);

        // A tailer still needing LSN 2 finds the generation starting at 3:
        // rebase required.
        let mut behind = WalTailer::new(&path);
        assert!(matches!(
            behind.poll(1, wal.durable_lsn(), usize::MAX).unwrap(),
            TailPoll::NeedsRebase
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn equal_length_replacement_generation_is_detected_via_the_watermark() {
        let dir = temp_dir("samelen");
        let path = dir.join("redo.wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::create(&path, FsyncPolicy::Always, Arc::new(IoStats::new())).unwrap();
        wal.reset_with(&WalRecord::Checkpoint {
            worm_len: 0,
            meta: vec![7; 16],
        })
        .unwrap(); // LSN 1

        let mut tailer = WalTailer::new(&path);
        let TailPoll::Batch(b) = tailer.poll(0, wal.durable_lsn(), usize::MAX).unwrap() else {
            panic!("no rebase expected");
        };
        assert_eq!(lsns(&b), vec![1]);

        // Records the tailer never fetches, then a reset whose lone
        // checkpoint frame is byte-for-byte the same length as the one the
        // cursor sits after: the file length alone cannot reveal the
        // replacement.
        wal.append(&image(1, 1)).unwrap();
        wal.append(&commit(1)).unwrap();
        wal.reset_with(&WalRecord::Checkpoint {
            worm_len: 0,
            meta: vec![8; 16],
        })
        .unwrap(); // LSN 4, alone

        assert!(
            matches!(
                tailer.poll(1, wal.durable_lsn(), usize::MAX).unwrap(),
                TailPoll::NeedsRebase
            ),
            "the durable watermark must expose an equal-length replacement"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shipped_bodies_round_trip_into_a_replica_log() {
        let dir = temp_dir("ship");
        let primary = dir.join("primary.wal");
        let replica = dir.join("replica.wal");
        let _ = std::fs::remove_file(&primary);
        let _ = std::fs::remove_file(&replica);
        let stats = Arc::new(IoStats::new());
        let src = Wal::create(&primary, FsyncPolicy::Always, Arc::clone(&stats)).unwrap();
        src.append(&image(4, 4)).unwrap();
        src.append(&commit(9)).unwrap();

        let mut tailer = WalTailer::new(&primary);
        let TailPoll::Batch(batch) = tailer.poll(0, src.durable_lsn(), usize::MAX).unwrap() else {
            panic!("no rebase expected");
        };

        {
            let dst = Wal::create(&replica, FsyncPolicy::Always, Arc::clone(&stats)).unwrap();
            for body in &batch {
                assert!(dst.append_shipped(body).unwrap());
            }
            // Re-shipping the same records is a no-op (reconnect overlap).
            for body in &batch {
                assert!(!dst.append_shipped(body).unwrap());
            }
            dst.sync().unwrap();
            assert_eq!(dst.last_lsn(), 2);
        }
        let (_, scan) = Wal::open(&replica, FsyncPolicy::Always, stats).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].1, image(4, 4));
        assert_eq!(scan.records[1].1, commit(9));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shipped_lsn_gap_is_rejected() {
        let dir = temp_dir("gap");
        let path = dir.join("replica.wal");
        let _ = std::fs::remove_file(&path);
        let dst = Wal::create(&path, FsyncPolicy::Always, Arc::new(IoStats::new())).unwrap();
        // First record of an empty log may carry any LSN...
        assert!(dst.append_shipped(&image(1, 1).encode_body(50)).unwrap());
        // ...but after that the sequence must be contiguous.
        assert!(dst.append_shipped(&image(2, 2).encode_body(53)).is_err());
        assert!(dst.append_shipped(&image(2, 2).encode_body(51)).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
