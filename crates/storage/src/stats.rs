//! Cross-cutting I/O statistics.
//!
//! Counters are updated by the stores and the buffer pool and read by the
//! experiment harness to report node accesses per query and device traffic
//! per workload. All counters are atomic so that read-only transactions can
//! run concurrently with a writer without any shared locking (matching the
//! lock-free read-only transactions of §4.1).
//!
//! Concurrency contract (audited for the shared-tree engine): every update
//! is a single `fetch_add` — an atomic read-modify-write — never a
//! load/store pair, so increments from any number of threads are exact
//! (asserted by `counters_are_exact_under_contention`). `Relaxed` ordering
//! suffices because the counters carry no synchronization duty: snapshots
//! are "consistent enough" for reporting, and exactness of the *totals* is
//! all the tests rely on. [`IoStats::reset`] and [`IoStats::snapshot`] are
//! safe anytime but only meaningful at quiescent points (no in-flight
//! operations), since they read/write each counter independently.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable, shareable I/O counters.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Page reads that reached the magnetic store (buffer-pool misses).
    pub magnetic_reads: AtomicU64,
    /// Page writes that reached the magnetic store (write-back of dirty pages).
    pub magnetic_writes: AtomicU64,
    /// Pages allocated on the magnetic store.
    pub magnetic_allocs: AtomicU64,
    /// Pages freed on the magnetic store.
    pub magnetic_frees: AtomicU64,
    /// Historical-node appends to the WORM store.
    pub worm_appends: AtomicU64,
    /// Individual sector writes on the WORM store (WOBT-style incremental writes).
    pub worm_sector_writes: AtomicU64,
    /// Reads from the WORM store.
    pub worm_reads: AtomicU64,
    /// Buffer-pool hits (logical page reads served from memory).
    pub cache_hits: AtomicU64,
    /// Buffer-pool misses.
    pub cache_misses: AtomicU64,
    /// Logical node accesses performed by tree operations (one per node
    /// visited on a search path, regardless of caching).
    pub node_accesses_current: AtomicU64,
    /// Logical node accesses that touched historical (WORM-resident) nodes.
    pub node_accesses_historical: AtomicU64,
    /// Decoded-node cache hits (node accesses served without any decode).
    pub node_cache_hits: AtomicU64,
    /// Decoded-node cache misses (node accesses that had to decode a page
    /// or WORM image).
    pub node_cache_misses: AtomicU64,
    /// Full node decodes (page/WORM image -> in-memory node).
    pub node_decodes: AtomicU64,
    /// Full node encodes (in-memory node -> page image), deferred to
    /// node-cache eviction and flush.
    pub node_encodes: AtomicU64,
    /// Records appended to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// Fsyncs issued by the write-ahead log (commit-policy and checkpoint).
    pub wal_syncs: AtomicU64,
    /// Bytes appended to the write-ahead log (frame bytes, including the
    /// length/CRC header), the E12a `wal B/op` numerator.
    pub wal_bytes_appended: AtomicU64,
    /// Commit fences appended to the WAL (one per committed mutation group);
    /// with `wal_syncs` this yields the commits-per-fsync sharing ratio.
    pub wal_commits: AtomicU64,
    /// Drains performed by the group-commit thread (each drain issues at
    /// most one fsync covering every commit queued behind it).
    pub group_commit_batches: AtomicU64,
    /// Times a committer parked waiting for the durable-LSN watermark.
    pub group_commit_waits: AtomicU64,
    /// Total nanoseconds committers spent parked on the watermark.
    pub group_commit_wait_nanos: AtomicU64,
    /// Times a writer found the shard writer lock contended (had to block).
    pub writer_lock_waits: AtomicU64,
    /// Total nanoseconds writers spent blocked acquiring the writer lock —
    /// with `wal_commits` this yields the E14 writer-lock wait per op.
    pub writer_lock_wait_nanos: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a magnetic page read.
    pub fn record_magnetic_read(&self) {
        Self::bump(&self.magnetic_reads, 1);
    }

    /// Records a magnetic page write.
    pub fn record_magnetic_write(&self) {
        Self::bump(&self.magnetic_writes, 1);
    }

    /// Records a magnetic page allocation.
    pub fn record_magnetic_alloc(&self) {
        Self::bump(&self.magnetic_allocs, 1);
    }

    /// Records a magnetic page free.
    pub fn record_magnetic_free(&self) {
        Self::bump(&self.magnetic_frees, 1);
    }

    /// Records a WORM append.
    pub fn record_worm_append(&self) {
        Self::bump(&self.worm_appends, 1);
    }

    /// Records a WORM single-sector write.
    pub fn record_worm_sector_write(&self) {
        Self::bump(&self.worm_sector_writes, 1);
    }

    /// Records a WORM read.
    pub fn record_worm_read(&self) {
        Self::bump(&self.worm_reads, 1);
    }

    /// Records a buffer-pool hit.
    pub fn record_cache_hit(&self) {
        Self::bump(&self.cache_hits, 1);
    }

    /// Records a buffer-pool miss.
    pub fn record_cache_miss(&self) {
        Self::bump(&self.cache_misses, 1);
    }

    /// Records a logical access to a current (magnetic) node.
    pub fn record_current_node_access(&self) {
        Self::bump(&self.node_accesses_current, 1);
    }

    /// Records a logical access to a historical (WORM) node.
    pub fn record_historical_node_access(&self) {
        Self::bump(&self.node_accesses_historical, 1);
    }

    /// Records a decoded-node cache hit.
    pub fn record_node_cache_hit(&self) {
        Self::bump(&self.node_cache_hits, 1);
    }

    /// Records a decoded-node cache miss.
    pub fn record_node_cache_miss(&self) {
        Self::bump(&self.node_cache_misses, 1);
    }

    /// Records a full node decode.
    pub fn record_node_decode(&self) {
        Self::bump(&self.node_decodes, 1);
    }

    /// Records a full node encode.
    pub fn record_node_encode(&self) {
        Self::bump(&self.node_encodes, 1);
    }

    /// Records a WAL record append.
    pub fn record_wal_append(&self) {
        Self::bump(&self.wal_appends, 1);
    }

    /// Records a WAL fsync.
    pub fn record_wal_sync(&self) {
        Self::bump(&self.wal_syncs, 1);
    }

    /// Records `n` bytes appended to the WAL.
    pub fn record_wal_bytes(&self, n: u64) {
        Self::bump(&self.wal_bytes_appended, n);
    }

    /// Records a commit fence appended to the WAL.
    pub fn record_wal_commit(&self) {
        Self::bump(&self.wal_commits, 1);
    }

    /// Records one drain of the group-commit queue.
    pub fn record_group_commit_batch(&self) {
        Self::bump(&self.group_commit_batches, 1);
    }

    /// Records one parked wait on the durable watermark and its duration.
    pub fn record_group_commit_wait(&self, nanos: u64) {
        Self::bump(&self.group_commit_waits, 1);
        Self::bump(&self.group_commit_wait_nanos, nanos);
    }

    /// Records one blocked writer-lock acquisition and its duration.
    pub fn record_writer_lock_wait(&self, nanos: u64) {
        Self::bump(&self.writer_lock_waits, 1);
        Self::bump(&self.writer_lock_wait_nanos, nanos);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            magnetic_reads: self.magnetic_reads.load(Ordering::Relaxed),
            magnetic_writes: self.magnetic_writes.load(Ordering::Relaxed),
            magnetic_allocs: self.magnetic_allocs.load(Ordering::Relaxed),
            magnetic_frees: self.magnetic_frees.load(Ordering::Relaxed),
            worm_appends: self.worm_appends.load(Ordering::Relaxed),
            worm_sector_writes: self.worm_sector_writes.load(Ordering::Relaxed),
            worm_reads: self.worm_reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            node_accesses_current: self.node_accesses_current.load(Ordering::Relaxed),
            node_accesses_historical: self.node_accesses_historical.load(Ordering::Relaxed),
            node_cache_hits: self.node_cache_hits.load(Ordering::Relaxed),
            node_cache_misses: self.node_cache_misses.load(Ordering::Relaxed),
            node_decodes: self.node_decodes.load(Ordering::Relaxed),
            node_encodes: self.node_encodes.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            wal_bytes_appended: self.wal_bytes_appended.load(Ordering::Relaxed),
            wal_commits: self.wal_commits.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            group_commit_waits: self.group_commit_waits.load(Ordering::Relaxed),
            group_commit_wait_nanos: self.group_commit_wait_nanos.load(Ordering::Relaxed),
            writer_lock_waits: self.writer_lock_waits.load(Ordering::Relaxed),
            writer_lock_wait_nanos: self.writer_lock_wait_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in [
            &self.magnetic_reads,
            &self.magnetic_writes,
            &self.magnetic_allocs,
            &self.magnetic_frees,
            &self.worm_appends,
            &self.worm_sector_writes,
            &self.worm_reads,
            &self.cache_hits,
            &self.cache_misses,
            &self.node_accesses_current,
            &self.node_accesses_historical,
            &self.node_cache_hits,
            &self.node_cache_misses,
            &self.node_decodes,
            &self.node_encodes,
            &self.wal_appends,
            &self.wal_syncs,
            &self.wal_bytes_appended,
            &self.wal_commits,
            &self.group_commit_batches,
            &self.group_commit_waits,
            &self.group_commit_wait_nanos,
            &self.writer_lock_waits,
            &self.writer_lock_wait_nanos,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IoSnapshot {
    /// See [`IoStats::magnetic_reads`].
    pub magnetic_reads: u64,
    /// See [`IoStats::magnetic_writes`].
    pub magnetic_writes: u64,
    /// See [`IoStats::magnetic_allocs`].
    pub magnetic_allocs: u64,
    /// See [`IoStats::magnetic_frees`].
    pub magnetic_frees: u64,
    /// See [`IoStats::worm_appends`].
    pub worm_appends: u64,
    /// See [`IoStats::worm_sector_writes`].
    pub worm_sector_writes: u64,
    /// See [`IoStats::worm_reads`].
    pub worm_reads: u64,
    /// See [`IoStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`IoStats::cache_misses`].
    pub cache_misses: u64,
    /// See [`IoStats::node_accesses_current`].
    pub node_accesses_current: u64,
    /// See [`IoStats::node_accesses_historical`].
    pub node_accesses_historical: u64,
    /// See [`IoStats::node_cache_hits`].
    pub node_cache_hits: u64,
    /// See [`IoStats::node_cache_misses`].
    pub node_cache_misses: u64,
    /// See [`IoStats::node_decodes`].
    pub node_decodes: u64,
    /// See [`IoStats::node_encodes`].
    pub node_encodes: u64,
    /// See [`IoStats::wal_appends`].
    pub wal_appends: u64,
    /// See [`IoStats::wal_syncs`].
    pub wal_syncs: u64,
    /// See [`IoStats::wal_bytes_appended`].
    pub wal_bytes_appended: u64,
    /// See [`IoStats::wal_commits`].
    pub wal_commits: u64,
    /// See [`IoStats::group_commit_batches`].
    pub group_commit_batches: u64,
    /// See [`IoStats::group_commit_waits`].
    pub group_commit_waits: u64,
    /// See [`IoStats::group_commit_wait_nanos`].
    pub group_commit_wait_nanos: u64,
    /// See [`IoStats::writer_lock_waits`].
    pub writer_lock_waits: u64,
    /// See [`IoStats::writer_lock_wait_nanos`].
    pub writer_lock_wait_nanos: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (saturating), used to measure
    /// the cost of a single operation or batch.
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            magnetic_reads: self.magnetic_reads.saturating_sub(earlier.magnetic_reads),
            magnetic_writes: self.magnetic_writes.saturating_sub(earlier.magnetic_writes),
            magnetic_allocs: self.magnetic_allocs.saturating_sub(earlier.magnetic_allocs),
            magnetic_frees: self.magnetic_frees.saturating_sub(earlier.magnetic_frees),
            worm_appends: self.worm_appends.saturating_sub(earlier.worm_appends),
            worm_sector_writes: self
                .worm_sector_writes
                .saturating_sub(earlier.worm_sector_writes),
            worm_reads: self.worm_reads.saturating_sub(earlier.worm_reads),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            node_accesses_current: self
                .node_accesses_current
                .saturating_sub(earlier.node_accesses_current),
            node_accesses_historical: self
                .node_accesses_historical
                .saturating_sub(earlier.node_accesses_historical),
            node_cache_hits: self.node_cache_hits.saturating_sub(earlier.node_cache_hits),
            node_cache_misses: self
                .node_cache_misses
                .saturating_sub(earlier.node_cache_misses),
            node_decodes: self.node_decodes.saturating_sub(earlier.node_decodes),
            node_encodes: self.node_encodes.saturating_sub(earlier.node_encodes),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_syncs: self.wal_syncs.saturating_sub(earlier.wal_syncs),
            wal_bytes_appended: self
                .wal_bytes_appended
                .saturating_sub(earlier.wal_bytes_appended),
            wal_commits: self.wal_commits.saturating_sub(earlier.wal_commits),
            group_commit_batches: self
                .group_commit_batches
                .saturating_sub(earlier.group_commit_batches),
            group_commit_waits: self
                .group_commit_waits
                .saturating_sub(earlier.group_commit_waits),
            group_commit_wait_nanos: self
                .group_commit_wait_nanos
                .saturating_sub(earlier.group_commit_wait_nanos),
            writer_lock_waits: self
                .writer_lock_waits
                .saturating_sub(earlier.writer_lock_waits),
            writer_lock_wait_nanos: self
                .writer_lock_wait_nanos
                .saturating_sub(earlier.writer_lock_wait_nanos),
        }
    }

    /// Adds every counter of `other` into `self` — used to aggregate the
    /// per-shard [`IoStats`] of a sharded engine into one engine-wide view.
    pub fn merge(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            magnetic_reads: self.magnetic_reads + other.magnetic_reads,
            magnetic_writes: self.magnetic_writes + other.magnetic_writes,
            magnetic_allocs: self.magnetic_allocs + other.magnetic_allocs,
            magnetic_frees: self.magnetic_frees + other.magnetic_frees,
            worm_appends: self.worm_appends + other.worm_appends,
            worm_sector_writes: self.worm_sector_writes + other.worm_sector_writes,
            worm_reads: self.worm_reads + other.worm_reads,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            node_accesses_current: self.node_accesses_current + other.node_accesses_current,
            node_accesses_historical: self.node_accesses_historical
                + other.node_accesses_historical,
            node_cache_hits: self.node_cache_hits + other.node_cache_hits,
            node_cache_misses: self.node_cache_misses + other.node_cache_misses,
            node_decodes: self.node_decodes + other.node_decodes,
            node_encodes: self.node_encodes + other.node_encodes,
            wal_appends: self.wal_appends + other.wal_appends,
            wal_syncs: self.wal_syncs + other.wal_syncs,
            wal_bytes_appended: self.wal_bytes_appended + other.wal_bytes_appended,
            wal_commits: self.wal_commits + other.wal_commits,
            group_commit_batches: self.group_commit_batches + other.group_commit_batches,
            group_commit_waits: self.group_commit_waits + other.group_commit_waits,
            group_commit_wait_nanos: self.group_commit_wait_nanos + other.group_commit_wait_nanos,
            writer_lock_waits: self.writer_lock_waits + other.writer_lock_waits,
            writer_lock_wait_nanos: self.writer_lock_wait_nanos + other.writer_lock_wait_nanos,
        }
    }

    /// Total logical node accesses (current + historical).
    pub fn total_node_accesses(&self) -> u64 {
        self.node_accesses_current + self.node_accesses_historical
    }

    /// Buffer-pool hit rate in `[0, 1]`; `None` if no lookups happened.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }

    /// Decoded-node cache hit rate in `[0, 1]`; `None` if no node was read.
    pub fn node_cache_hit_rate(&self) -> Option<f64> {
        let total = self.node_cache_hits + self.node_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.node_cache_hits as f64 / total as f64)
        }
    }

    /// Commit fences acknowledged per WAL fsync — the group-commit sharing
    /// ratio; `None` if no fsync happened in the window.
    pub fn commits_per_fsync(&self) -> Option<f64> {
        if self.wal_syncs == 0 {
            None
        } else {
            Some(self.wal_commits as f64 / self.wal_syncs as f64)
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "magnetic r/w/alloc/free {}/{}/{}/{}  worm append/sector/read {}/{}/{}  cache hit/miss {}/{}  node accesses cur/hist {}/{}  node cache hit/miss {}/{}  decode/encode {}/{}  wal append/sync/bytes {}/{}/{}  commit fence/batch/wait/waitns {}/{}/{}/{}  wlock wait/waitns {}/{}",
            self.magnetic_reads,
            self.magnetic_writes,
            self.magnetic_allocs,
            self.magnetic_frees,
            self.worm_appends,
            self.worm_sector_writes,
            self.worm_reads,
            self.cache_hits,
            self.cache_misses,
            self.node_accesses_current,
            self.node_accesses_historical,
            self.node_cache_hits,
            self.node_cache_misses,
            self.node_decodes,
            self.node_encodes,
            self.wal_appends,
            self.wal_syncs,
            self.wal_bytes_appended,
            self.wal_commits,
            self.group_commit_batches,
            self.group_commit_waits,
            self.group_commit_wait_nanos,
            self.writer_lock_waits,
            self.writer_lock_wait_nanos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = IoStats::new();
        s.record_magnetic_read();
        s.record_magnetic_read();
        s.record_magnetic_write();
        s.record_worm_append();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_current_node_access();
        s.record_historical_node_access();

        let snap = s.snapshot();
        assert_eq!(snap.magnetic_reads, 2);
        assert_eq!(snap.magnetic_writes, 1);
        assert_eq!(snap.worm_appends, 1);
        assert_eq!(snap.total_node_accesses(), 2);
        assert_eq!(snap.cache_hit_rate(), Some(0.5));

        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
        assert_eq!(IoSnapshot::default().cache_hit_rate(), None);
    }

    /// Zero-fsync windows (the `Os` policy never syncs between checkpoints)
    /// must yield `None`, not a NaN ratio the report layer would print.
    #[test]
    fn commits_per_fsync_is_none_without_a_sync() {
        let mut snap = IoSnapshot::default();
        assert_eq!(snap.commits_per_fsync(), None);
        snap.wal_commits = 7;
        assert_eq!(snap.commits_per_fsync(), None);
        snap.wal_syncs = 2;
        assert_eq!(snap.commits_per_fsync(), Some(3.5));
    }

    #[test]
    fn delta_since_measures_a_window() {
        let s = IoStats::new();
        s.record_magnetic_read();
        let before = s.snapshot();
        s.record_magnetic_read();
        s.record_worm_read();
        let after = s.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.magnetic_reads, 1);
        assert_eq!(d.worm_reads, 1);
        assert_eq!(d.magnetic_writes, 0);
    }

    /// Regression guard for the shared-tree engine: counters hammered from
    /// 8 threads must land on exact totals. A load/store pair instead of an
    /// atomic `fetch_add` would lose increments under this contention.
    #[test]
    fn counters_are_exact_under_contention() {
        use std::sync::Arc;

        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;

        let stats = Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let stats = Arc::clone(&stats);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        stats.record_current_node_access();
                        stats.record_node_cache_hit();
                        stats.record_magnetic_read();
                        // Mix in a second counter on a thread-dependent
                        // cadence so the interleavings differ per run.
                        if (i + t) % 2 == 0 {
                            stats.record_node_decode();
                        }
                    }
                });
            }
        });

        let snap = stats.snapshot();
        assert_eq!(snap.node_accesses_current, THREADS * PER_THREAD);
        assert_eq!(snap.node_cache_hits, THREADS * PER_THREAD);
        assert_eq!(snap.magnetic_reads, THREADS * PER_THREAD);
        assert_eq!(snap.node_decodes, THREADS * PER_THREAD / 2);
        assert_eq!(snap.node_cache_misses, 0);
    }

    #[test]
    fn display_is_compact() {
        let s = IoStats::new();
        s.record_cache_hit();
        let text = s.snapshot().to_string();
        assert!(text.contains("cache hit/miss 1/0"));
    }
}
