//! The write-ahead (redo) log for the current database.
//!
//! The paper's two-device design is only half durable by construction: the
//! WORM side is write-once hardware, so migrated history can never be lost,
//! but the magnetic current database is rewritten in place and buffered in
//! two volatile caches (the decoded-node cache and the buffer pool). This
//! module closes that gap with a **hybrid redo log**: the *first* dirtying
//! of a page per checkpoint interval appends its full image here *before*
//! the engine's caches may hold it dirty; every later content-only rewrite
//! of the same page appends only a compact logical [`PageOp`] delta. A
//! crash can always be repaired by replaying the images and re-applying
//! the deltas, in LSN order, over the magnetic store ("repeating
//! history").
//!
//! ## Record format
//!
//! The log is a flat file of length-prefixed, checksummed records:
//!
//! ```text
//! +----------+----------+===========================+
//! | len: u32 | crc: u32 |  body (len bytes)         |
//! +----------+----------+===========================+
//! body = lsn: u64 | kind: u8 | payload
//!
//! kind 1  PageImage   payload = page: u64 | bytes (u32-len-prefixed)
//! kind 2  Commit      payload = ts: u64 | worm_len: u64 | meta (u32-len-prefixed)
//! kind 3  Checkpoint  payload = worm_len: u64 | meta (u32-len-prefixed)
//! kind 4  PageDelta   payload = page: u64 | op (see PageOp::encode)
//! kind 5  Prepare     payload = ts: u64 | worm_len: u64 | meta (u32-len-prefixed)
//!                               | txn: u64 | coordinator: u32
//!                               | participants (u32 count, u32 each)
//! kind 6  Decision    payload = ts: u64 | participants (u32 count, u32 each)
//! ```
//!
//! A `PageDelta` is meaningful only relative to the page state built up by
//! the records before it: within one log generation, the engine guarantees
//! a `PageImage` of the page precedes the page's first delta (the
//! first-touch rule), so replay never has to trust — or even read — the
//! possibly-torn device image of a delta'd page. Deltas are *slot
//! assignments* (insert-or-replace a version, remove an uncommitted
//! version), so re-applying a replayed prefix over device state that
//! already contains it is idempotent.
//!
//! `crc` is CRC-32 (IEEE polynomial) over the body. On reopen the file is
//! scanned from the start; the first record whose length prefix runs past
//! the end of the file or whose CRC does not match marks a **torn tail**
//! (the machine died mid-append): the file is truncated there and replay
//! uses only the intact prefix. Nothing after a tear can be trusted — a
//! later record being intact does not mean the skipped one was benign.
//!
//! ## LSNs and the fence
//!
//! Every record carries a monotonically increasing **log sequence number**.
//! Two record kinds fence replay:
//!
//! * A **`Checkpoint`** record is appended (and always fsynced) only after
//!   a full flush — every dirty node encoded, every dirty page written,
//!   both devices synced. It promises "the magnetic store, as a device, is
//!   exactly the tree state described by my `meta` bytes". Recovery starts
//!   from the newest checkpoint and replays only records after it; its LSN
//!   is the *fence LSN* — nothing at or before it is ever replayed again.
//! * A **`Commit`** record is appended at the end of every mutation, after
//!   all of the mutation's page images. It promises "every image needed
//!   for the tree state described by my `meta` bytes precedes me in the
//!   log". Recovery replays page images up to the newest usable commit
//!   (the *cut*) and installs that commit's metadata (root pointer,
//!   logical clock, transaction counter). Images after the cut belong to a
//!   mutation that never finished logging and are discarded.
//!
//! A commit also records the WORM store's length at commit time: a commit
//! whose referenced history extends past the surviving WORM file cannot be
//! used as a cut (its index entries would dangle), so recovery stops at
//! the last commit whose `worm_len` fits.
//!
//! ## Group commit: one coalesced write per mutation
//!
//! Appends land in an in-process append buffer; the buffer is flushed to
//! the file with a single `write_all` when a fence record (`Commit` /
//! `Checkpoint`) is appended, when the flushed-LSN barrier or an fsync
//! needs the bytes in the file, or when it outgrows
//! [`APPEND_BUFFER_FLUSH_BYTES`]. One mutation — its page images, its
//! deltas, and its commit fence — therefore issues **one** write syscall
//! instead of one per record. Buffered bytes are always un-fenced (every
//! fence append flushes), so a process crash loses nothing acknowledged:
//! recovery's replay cut discards un-fenced records anyway.
//! [`tsb_common::FsyncPolicy`] chooses how often commit records
//! additionally force the file to stable storage; checkpoints always do.
//!
//! ## Pipelined commit: the fsync runs off the append path
//!
//! The device sync itself is **pipelined**: no append ever issues an
//! fsync inline. A commit at a policy boundary instead *requests*
//! durability of its fence LSN ([`Wal::append_commit`]) and then — on the
//! caller's schedule, typically after the engine has released its writer
//! lock — parks on the **durable-LSN watermark**
//! ([`Wal::wait_durable`]). A dedicated group-commit thread drains the
//! request queue: each drain captures the log tail, runs the pre-sync
//! hook, issues **one** `fsync` covering every commit appended up to the
//! capture, and broadcasts the new watermark to every parked committer.
//! While the device works, the next mutations keep appending (the inner
//! lock is not held across the sync), so under concurrent writers dozens
//! of commits share one fsync — `Always` durability at `EveryN`-like
//! throughput. A sync failure is sticky: it is published to the
//! watermark, every parked and future waiter errors, and the engine
//! poisons the tree. The per-policy wait rule: `Always` waits for its
//! own fence LSN, `EveryN(n)` waits only when its commit lands on a
//! group boundary, `Os` never waits.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use tsb_common::checksum::crc32;
use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::{FsyncPolicy, Key, Timestamp, TsbError, TsbResult, TxnId, Version};

use crate::fault::{CrashPoint, FaultInjector};
use crate::page::PageId;
use crate::stats::IoStats;

/// A log sequence number: the position of a record in the total order of
/// the log. Starts at 1; 0 means "nothing logged".
pub type Lsn = u64;

/// Upper bound on a single record body. Anything larger in a length prefix
/// is treated as a torn tail rather than an allocation request.
const MAX_RECORD_BODY: u32 = 64 << 20;

/// The append buffer is flushed to the file once it holds this many bytes,
/// even mid-mutation, bounding the process memory a huge split can pin.
const APPEND_BUFFER_FLUSH_BYTES: usize = 1 << 20;

/// A compact logical redo operation against one data (leaf) node — the
/// payload of a [`WalRecord::PageDelta`].
///
/// The content ops ([`InsertVersion`](Self::InsertVersion),
/// [`RemoveUncommitted`](Self::RemoveUncommitted)) are *slot assignments*
/// on the node's `(key, version-order)` entry map: applying one twice
/// equals applying it once. The structural ops record the *outcome* of a
/// split decision (the chosen split time or key); replay re-runs the same
/// pure partition function the forward path ran, against the same node
/// state the log rebuilt, so it reproduces the same result. Both families
/// replay deterministically in LSN order against the page's last logged
/// image — recovery never reads (or trusts) the device copy of a delta'd
/// page.
///
/// Wholesale content that cannot be derived from the page's prior state —
/// a freshly initialized node, a split piece landing on a new (or
/// recycled) page, a recovery repair — is never expressed as an op; it
/// logs a full [`WalRecord::PageImage`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PageOp {
    /// Insert a version into the leaf, replacing any existing entry with
    /// the same `(key, version order)` — the redo image of an insert,
    /// update, logical delete (tombstone), uncommitted transactional
    /// write, or commit-time stamping.
    InsertVersion(Version),
    /// Remove the uncommitted version of `key` written by `txn`, if
    /// present — the redo image of a transaction abort and of the removal
    /// half of commit-time stamping.
    RemoveUncommitted {
        /// The key whose uncommitted version is erased.
        key: Key,
        /// The transaction that wrote it.
        txn: TxnId,
    },
    /// Data-node time split at `split_time`: the page keeps the split's
    /// *current* partition (versions at or after the split time, the
    /// rule-3 duplicates valid at it, and uncommitted entries) and its
    /// time range now starts at `split_time`. The migrated half lives on
    /// the WORM, which needs no redo.
    DataTimeSplit {
        /// The chosen split time.
        split_time: Timestamp,
    },
    /// Data-node key split at `split_key`: the page keeps the low half
    /// (`keep_low`) or the high half, and its key range shrinks to the
    /// matching side. The other half's page logs its own image (it is a
    /// fresh or recycled page with no usable base).
    DataKeySplit {
        /// The chosen split key.
        split_key: Key,
        /// Whether this page keeps the `< split_key` half.
        keep_low: bool,
    },
    /// Index-node local time split at `split_time` (§3.5): the page keeps
    /// the entries whose rectangles reach `split_time` or later, and its
    /// time range now starts there.
    IndexTimeSplit {
        /// The chosen split time.
        split_time: Timestamp,
    },
    /// Index-node keyspace split at `split_key`: the page keeps the low or
    /// high side (straddling historical entries are duplicated into both
    /// by the partition rule, so each side is self-contained).
    IndexKeySplit {
        /// The chosen split key.
        split_key: Key,
        /// Whether this page keeps the low side.
        keep_low: bool,
    },
    /// Index-node child replacement: the entry for one child is swapped
    /// for the entries describing its split pieces. The payload is the
    /// tree's own encoding of `(old child address, replacement entries)` —
    /// opaque at this layer, exactly like the tree metadata carried by
    /// [`WalRecord::Commit`].
    IndexReplaceChild {
        /// Core-encoded `(old child, replacements)` tuple.
        payload: Vec<u8>,
    },
}

impl PageOp {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            PageOp::InsertVersion(v) => {
                w.put_u8(1);
                w.put_version(v);
            }
            PageOp::RemoveUncommitted { key, txn } => {
                w.put_u8(2);
                w.put_key(key);
                w.put_u64(txn.0);
            }
            PageOp::DataTimeSplit { split_time } => {
                w.put_u8(3);
                w.put_timestamp(*split_time);
            }
            PageOp::DataKeySplit {
                split_key,
                keep_low,
            } => {
                w.put_u8(4);
                w.put_key(split_key);
                w.put_u8(*keep_low as u8);
            }
            PageOp::IndexTimeSplit { split_time } => {
                w.put_u8(5);
                w.put_timestamp(*split_time);
            }
            PageOp::IndexKeySplit {
                split_key,
                keep_low,
            } => {
                w.put_u8(6);
                w.put_key(split_key);
                w.put_u8(*keep_low as u8);
            }
            PageOp::IndexReplaceChild { payload } => {
                w.put_u8(7);
                w.put_bytes(payload);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> TsbResult<Self> {
        match r.get_u8()? {
            1 => Ok(PageOp::InsertVersion(r.get_version()?)),
            2 => Ok(PageOp::RemoveUncommitted {
                key: r.get_key()?,
                txn: TxnId(r.get_u64()?),
            }),
            3 => Ok(PageOp::DataTimeSplit {
                split_time: r.get_timestamp()?,
            }),
            4 => Ok(PageOp::DataKeySplit {
                split_key: r.get_key()?,
                keep_low: r.get_u8()? != 0,
            }),
            5 => Ok(PageOp::IndexTimeSplit {
                split_time: r.get_timestamp()?,
            }),
            6 => Ok(PageOp::IndexKeySplit {
                split_key: r.get_key()?,
                keep_low: r.get_u8()? != 0,
            }),
            7 => Ok(PageOp::IndexReplaceChild {
                payload: r.get_bytes()?,
            }),
            t => Err(TsbError::corruption(format!("invalid WAL page op {t}"))),
        }
    }
}

/// One redo-log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// The newest image of a magnetic page (an encoded node). Appended by
    /// the tree *before* its node cache holds the node dirty.
    PageImage {
        /// The magnetic page this image belongs to.
        page: PageId,
        /// The full page payload (what `MagneticStore::write` would store).
        bytes: Vec<u8>,
    },
    /// A mutation fully logged: every page image it produced precedes this
    /// record. Carries the tree metadata describing the resulting state.
    Commit {
        /// The newest commit timestamp as of this mutation.
        ts: u64,
        /// WORM device length at commit time; recovery refuses to cut at a
        /// commit whose history extends past the surviving WORM file.
        worm_len: u64,
        /// Opaque tree metadata (root pointer, clock, txn counter) in the
        /// tree's own meta-page encoding.
        meta: Vec<u8>,
    },
    /// A completed flush: the magnetic device equals the state in `meta`.
    /// Replay starts after the newest checkpoint (the fence LSN).
    Checkpoint {
        /// WORM device length at checkpoint time.
        worm_len: u64,
        /// Opaque tree metadata, as in [`WalRecord::Commit`].
        meta: Vec<u8>,
    },
    /// A logical redo delta against one page: the page's content after an
    /// already-logged base ([`WalRecord::PageImage`], first-touch rule)
    /// plus this op, instead of a fresh full image. Appended by the tree
    /// for content-only leaf rewrites after the page's first dirtying in
    /// the current checkpoint interval.
    PageDelta {
        /// The magnetic page the op applies to.
        page: PageId,
        /// The logical mutation.
        op: PageOp,
    },
    /// A two-phase-commit **prepare** fence on one participant shard: every
    /// page image/delta of the prepared (still-uncommitted) writes precedes
    /// this record, and the record survives as a cut candidate so recovery
    /// can see the in-doubt transaction and resolve it against the
    /// coordinator's decision. Always carries full metadata (never elided)
    /// and is force-synced by the engine before the protocol proceeds.
    Prepare {
        /// The global commit timestamp reserved for the transaction.
        ts: u64,
        /// WORM device length at prepare time (same cut rule as a commit).
        worm_len: u64,
        /// Opaque tree metadata, as in [`WalRecord::Commit`].
        meta: Vec<u8>,
        /// The participant-local transaction id whose writes are prepared.
        txn: u64,
        /// Shard index of the coordinator (where the decision is logged).
        coordinator: u32,
        /// Shard indices of every participant, coordinator included.
        participants: Vec<u32>,
    },
    /// The coordinator's two-phase-commit **decision**: the transaction at
    /// `ts` is committed on every participant. Logged (and force-synced)
    /// only after every participant's prepare is durable; recovery commits
    /// an in-doubt prepare iff a decision with its `ts` survives on the
    /// coordinator, and aborts it otherwise (presumed abort).
    Decision {
        /// The global commit timestamp of the decided transaction.
        ts: u64,
        /// Shard indices of every participant, coordinator included.
        participants: Vec<u32>,
    },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::PageImage { .. } => 1,
            WalRecord::Commit { .. } => 2,
            WalRecord::Checkpoint { .. } => 3,
            WalRecord::PageDelta { .. } => 4,
            WalRecord::Prepare { .. } => 5,
            WalRecord::Decision { .. } => 6,
        }
    }

    /// Encodes the record body (`lsn | kind | payload`) exactly as it is
    /// framed into the log. Public for WAL shipping: a replication source
    /// re-frames record bodies onto the wire, and a replica appends the
    /// same bytes to its local log via [`Wal::append_shipped`], so both
    /// sides of the stream speak the log's own on-disk encoding.
    pub fn encode_body(&self, lsn: Lsn) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(lsn);
        w.put_u8(self.kind());
        match self {
            WalRecord::PageImage { page, bytes } => {
                w.put_u64(page.0);
                w.put_bytes(bytes);
            }
            WalRecord::Commit { ts, worm_len, meta } => {
                w.put_u64(*ts);
                w.put_u64(*worm_len);
                w.put_bytes(meta);
            }
            WalRecord::Checkpoint { worm_len, meta } => {
                w.put_u64(*worm_len);
                w.put_bytes(meta);
            }
            WalRecord::PageDelta { page, op } => {
                w.put_u64(page.0);
                op.encode(&mut w);
            }
            WalRecord::Prepare {
                ts,
                worm_len,
                meta,
                txn,
                coordinator,
                participants,
            } => {
                w.put_u64(*ts);
                w.put_u64(*worm_len);
                w.put_bytes(meta);
                w.put_u64(*txn);
                w.put_u32(*coordinator);
                w.put_u32(participants.len() as u32);
                for p in participants {
                    w.put_u32(*p);
                }
            }
            WalRecord::Decision { ts, participants } => {
                w.put_u64(*ts);
                w.put_u32(participants.len() as u32);
                for p in participants {
                    w.put_u32(*p);
                }
            }
        }
        w.into_vec()
    }

    /// Decodes a record body produced by [`Self::encode_body`], returning
    /// the embedded LSN and the record. The inverse used by a replica to
    /// interpret shipped record bodies.
    pub fn decode_body(body: &[u8]) -> TsbResult<(Lsn, WalRecord)> {
        let mut r = ByteReader::new(body);
        let lsn = r.get_u64()?;
        let record = match r.get_u8()? {
            1 => WalRecord::PageImage {
                page: PageId(r.get_u64()?),
                bytes: r.get_bytes()?,
            },
            2 => WalRecord::Commit {
                ts: r.get_u64()?,
                worm_len: r.get_u64()?,
                meta: r.get_bytes()?,
            },
            3 => WalRecord::Checkpoint {
                worm_len: r.get_u64()?,
                meta: r.get_bytes()?,
            },
            4 => WalRecord::PageDelta {
                page: PageId(r.get_u64()?),
                op: PageOp::decode(&mut r)?,
            },
            5 => {
                let ts = r.get_u64()?;
                let worm_len = r.get_u64()?;
                let meta = r.get_bytes()?;
                let txn = r.get_u64()?;
                let coordinator = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let mut participants = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    participants.push(r.get_u32()?);
                }
                WalRecord::Prepare {
                    ts,
                    worm_len,
                    meta,
                    txn,
                    coordinator,
                    participants,
                }
            }
            6 => {
                let ts = r.get_u64()?;
                let n = r.get_u32()? as usize;
                let mut participants = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    participants.push(r.get_u32()?);
                }
                WalRecord::Decision { ts, participants }
            }
            t => return Err(TsbError::corruption(format!("invalid WAL record kind {t}"))),
        };
        Ok((lsn, record))
    }
}

/// Forces the directory entry for `path` to stable storage. Creating or
/// renaming a file is durable only once its *parent directory* is fsynced:
/// the file's own `sync_all` covers its data and inode, not the name
/// pointing at it, and on many filesystems a crash can otherwise resurrect
/// the directory's previous contents (the pre-checkpoint log generation, or
/// no log at all).
fn sync_parent_dir(path: &Path) -> TsbResult<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()?;
    Ok(())
}

struct WalInner {
    file: File,
    next_lsn: Lsn,
    /// Bytes of intact log (the append position), buffered bytes included.
    len: u64,
    commits_since_sync: u32,
    /// Appended frames not yet written to the file: the group-commit
    /// append buffer. Drained by one coalesced `write_all` at every fence
    /// append, before every fsync, and at [`APPEND_BUFFER_FLUSH_BYTES`].
    /// Always un-fenced content (fence appends flush), so losing it to a
    /// process kill loses nothing recovery would have kept.
    pending: Vec<u8>,
    /// Runs immediately before every fsync of the log — the engine's spot
    /// to settle cross-device ordering (sync the WORM store so no commit
    /// in the about-to-be-durable prefix references history that could
    /// fail to survive). Deferring that work here, instead of paying it
    /// per commit, is what keeps `Os`/`EveryN` commits fsync-free.
    /// `Arc` so a capture can run it outside the inner lock.
    pre_sync: Option<Arc<dyn Fn() -> TsbResult<()> + Send + Sync>>,
    injector: Option<Arc<FaultInjector>>,
}

/// See [`WalInner::pre_sync`] / [`Wal::set_pre_sync_hook`].
pub type PreSyncHook = Box<dyn Fn() -> TsbResult<()> + Send + Sync>;

impl WalInner {
    /// Writes the append buffer to the file in one syscall.
    fn flush_pending(&mut self) -> TsbResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.pending.clear();
        Ok(())
    }
}

/// Locks a std mutex, shrugging off poisoning (a panicked committer must
/// not wedge every waiter — matching the parking_lot contract used
/// elsewhere in the crate).
fn lock_std<T>(mutex: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// What a sync request queue holds: the highest fence LSN whose
/// durability was requested, and the shutdown flag for the committer
/// thread. Guarded by [`GroupCommit::queue`] / woken via
/// [`GroupCommit::work`].
#[derive(Default)]
struct SyncQueue {
    requested: Lsn,
    shutdown: bool,
}

/// The durable-LSN watermark: every record at or below `lsn` is on stable
/// storage. `failed` is the sticky sync error — once a drain fails, every
/// parked and future waiter observes it.
#[derive(Default)]
struct DurableMark {
    lsn: Lsn,
    failed: Option<String>,
}

/// The pipelined group-commit state shared between committers (append
/// threads) and the dedicated sync thread. Uses `std::sync` primitives
/// because the workspace's parking_lot shim carries no condvar.
///
/// Lock order (never reversed): `queue` before `durable`; the record
/// state's inner lock before `durable`. `queue` and the inner lock are
/// never held together.
#[derive(Default)]
struct GroupCommit {
    /// See [`SyncQueue`].
    queue: StdMutex<SyncQueue>,
    /// Wakes the committer thread when `queue.requested` advances.
    work: Condvar,
    /// See [`DurableMark`].
    durable: StdMutex<DurableMark>,
    /// Broadcasts watermark advances (and failures) to parked committers.
    published: Condvar,
}

/// The state shared between [`Wal`] handles, their callers, and the
/// group-commit thread.
struct WalShared {
    inner: Mutex<WalInner>,
    policy: FsyncPolicy,
    stats: Arc<IoStats>,
    group: GroupCommit,
}

/// The write-ahead log: an append-only, checksummed redo log over one
/// file, synced by a dedicated group-commit thread (see the module docs).
pub struct Wal {
    shared: Arc<WalShared>,
    path: PathBuf,
    /// The group-commit thread, joined on drop.
    committer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.shared.inner.lock();
        f.debug_struct("Wal")
            .field("next_lsn", &inner.next_lsn)
            .field("bytes", &inner.len)
            .field("durable_lsn", &self.shared.durable_lsn())
            .field("policy", &self.shared.policy)
            .finish()
    }
}

/// What [`Wal::open`] found on disk: the intact records (torn tail already
/// truncated) and whether a tear was repaired.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact record, in LSN order.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Whether a torn tail (partial or corrupt trailing record) was cut off.
    pub truncated_torn_tail: bool,
}

impl WalShared {
    /// The durable-LSN watermark (0 when nothing is durable yet).
    fn durable_lsn(&self) -> Lsn {
        lock_std(&self.group.durable).lsn
    }

    /// Advances the watermark to `lsn` (monotonic: a stale publish from a
    /// drain that raced a checkpoint reset is a no-op) and wakes every
    /// parked committer.
    fn publish_durable(&self, lsn: Lsn) {
        let mut mark = lock_std(&self.group.durable);
        if lsn > mark.lsn {
            mark.lsn = lsn;
        }
        drop(mark);
        self.group.published.notify_all();
    }

    /// Publishes a sticky sync failure: every parked and future
    /// [`Self::wait_durable`] call errors with it.
    fn publish_failure(&self, err: &TsbError) {
        let mut mark = lock_std(&self.group.durable);
        if mark.failed.is_none() {
            mark.failed = Some(err.to_string());
        }
        drop(mark);
        self.group.published.notify_all();
    }

    /// Asks the group-commit thread to make everything through `lsn`
    /// durable. Returns immediately; callers park via
    /// [`Self::wait_durable`] when their policy requires it.
    fn request_sync(&self, lsn: Lsn) {
        let mut queue = lock_std(&self.group.queue);
        if lsn > queue.requested {
            queue.requested = lsn;
            drop(queue);
            self.group.work.notify_one();
        }
    }

    /// Parks until the watermark reaches `lsn` or a sync failure is
    /// published. The parked time lands in the group-commit wait counters.
    fn wait_durable(&self, lsn: Lsn) -> TsbResult<()> {
        let mut mark = lock_std(&self.group.durable);
        if mark.lsn >= lsn {
            return Ok(());
        }
        let start = Instant::now();
        loop {
            if mark.lsn >= lsn {
                drop(mark);
                self.stats
                    .record_group_commit_wait(start.elapsed().as_nanos() as u64);
                return Ok(());
            }
            // A commit already durable is durable no matter what happened
            // to a *later* drain, hence the watermark check first.
            if let Some(msg) = &mark.failed {
                let err = TsbError::Io(std::io::Error::other(msg.clone()));
                drop(mark);
                self.stats
                    .record_group_commit_wait(start.elapsed().as_nanos() as u64);
                return Err(err);
            }
            mark = self
                .group
                .published
                .wait(mark)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Appends one record under the inner lock: frames it into the append
    /// buffer, flushes the buffer on fences and overflow, and — for commit
    /// fences — runs the policy's boundary arithmetic. Returns the record's
    /// LSN plus, for a boundary commit, the fence LSN the caller must get
    /// made durable (request + wait). Never syncs inline.
    fn append_record(&self, record: &WalRecord) -> TsbResult<(Lsn, Option<Lsn>)> {
        let mut inner = self.inner.lock();
        let point = match record {
            WalRecord::Checkpoint { .. } => CrashPoint::WalCheckpoint,
            WalRecord::Prepare { .. } => CrashPoint::WalPrepare,
            WalRecord::Decision { .. } => CrashPoint::WalDecision,
            _ => CrashPoint::WalAppend,
        };
        if let Some(injector) = &inner.injector {
            injector.check(point)?;
        }
        let lsn = inner.next_lsn;
        let body = record.encode_body(lsn);
        let frame_len = 8 + body.len();
        inner.pending.reserve(frame_len);
        inner
            .pending
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        let crc = crc32(&body);
        inner.pending.extend_from_slice(&crc.to_le_bytes());
        inner.pending.extend_from_slice(&body);
        inner.next_lsn += 1;
        inner.len += frame_len as u64;
        self.stats.record_wal_append();
        self.stats.record_wal_bytes(frame_len as u64);

        let is_fence = matches!(
            record,
            WalRecord::Commit { .. }
                | WalRecord::Checkpoint { .. }
                | WalRecord::Prepare { .. }
                | WalRecord::Decision { .. }
        );
        if is_fence || inner.pending.len() >= APPEND_BUFFER_FLUSH_BYTES {
            inner.flush_pending()?;
        }
        let boundary = match record {
            WalRecord::Commit { .. } => {
                self.stats.record_wal_commit();
                inner.commits_since_sync += 1;
                let at_boundary = match self.policy {
                    FsyncPolicy::Always => true,
                    FsyncPolicy::EveryN(n) => inner.commits_since_sync >= n.max(1),
                    FsyncPolicy::Os => false,
                };
                at_boundary.then_some(lsn)
            }
            // Checkpoints always sync, on the caller's thread; 2PC fences
            // (Prepare/Decision) are force-synced explicitly by the engine
            // via `sync()`; page records never sync.
            _ => None,
        };
        Ok((lsn, boundary))
    }

    /// Forces everything appended so far to stable storage and publishes
    /// the watermark. The capture (flush + tail LSN + file handle) runs
    /// under the inner lock; the device sync runs *outside* it, so the
    /// next mutation's appends proceed while the device works — the
    /// pipelining that lets concurrent commits share one fsync. Any error
    /// is published as the sticky failure before it returns. Returns
    /// whether a sync was actually performed (false = already durable).
    fn sync_to_tail(&self, from_committer: bool) -> TsbResult<bool> {
        let result = self.sync_to_tail_inner(from_committer);
        if let Err(e) = &result {
            self.publish_failure(e);
        }
        result
    }

    fn sync_to_tail_inner(&self, from_committer: bool) -> TsbResult<bool> {
        let (target, file, hook, injector) = {
            let mut inner = self.inner.lock();
            let target = inner.next_lsn - 1;
            if target <= self.durable_lsn() {
                // Nothing undurable; the append buffer is necessarily
                // empty (un-flushed appends hold LSNs above the mark).
                return Ok(false);
            }
            if let Some(injector) = &inner.injector {
                injector.check(CrashPoint::WalSync)?;
            }
            inner.flush_pending()?;
            inner.commits_since_sync = 0;
            (
                target,
                inner.file.try_clone()?,
                inner.pre_sync.clone(),
                inner.injector.clone(),
            )
        };
        // The target was captured *before* the hook runs: the WORM store
        // is append-only, so syncing it to its current length covers the
        // history referenced by every commit at or below the capture. (A
        // commit appended after the capture may reach the device by this
        // fsync with WORM references the hook never covered — recovery's
        // worm_len cut rule discards exactly those, and nothing
        // acknowledged them.)
        if let Some(hook) = &hook {
            hook()?;
        }
        file.sync_all()?;
        if let Some(injector) = &injector {
            // The window between the device sync and the watermark
            // broadcast: a crash here has durable-but-unacknowledged
            // commits, which recovery must keep (they cost nothing) while
            // the engine must not have reported them committed.
            injector.check(CrashPoint::WalSyncPublish)?;
        }
        // Count the sync *before* broadcasting the watermark: a waiter
        // woken by the publish must observe its sync in the counters.
        self.stats.record_wal_sync();
        if from_committer {
            self.stats.record_group_commit_batch();
        }
        self.publish_durable(target);
        Ok(true)
    }

    /// The group-commit thread body: park until a fence LSN beyond the
    /// watermark is requested, drain (one fsync per wake), repeat. Exits
    /// on shutdown or after publishing a sync failure — the failure is
    /// sticky, so staying alive to fail every future drain adds nothing.
    fn committer_loop(self: &Arc<Self>) {
        loop {
            {
                let mut queue = lock_std(&self.group.queue);
                loop {
                    if queue.shutdown {
                        return;
                    }
                    if queue.requested > self.durable_lsn() {
                        break;
                    }
                    queue = self
                        .group
                        .work
                        .wait(queue)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            if self.sync_to_tail(true).is_err() {
                return;
            }
        }
    }
}

impl Wal {
    /// Creates a fresh, empty log at `path` (truncating any existing file).
    pub fn create(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
        stats: Arc<IoStats>,
    ) -> TsbResult<Wal> {
        let path = path.as_ref().to_path_buf();
        // A fresh log invalidates any generation that came before it —
        // including a reset temp file a previous incarnation died holding.
        // Left in place, an intact fenced `*.wal.tmp` would be rolled
        // forward by the next `open`, clobbering this log with the dead
        // generation's checkpoint.
        match std::fs::remove_file(path.with_extension("wal.tmp")) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        // Make the file's *existence* durable before anything is logged
        // into it: without the directory fsync a crash could drop the
        // directory entry while keeping acknowledged, fsynced commits in
        // the now-unreachable inode.
        file.sync_all()?;
        sync_parent_dir(&path)?;
        Ok(Self::assemble(
            WalInner {
                file,
                next_lsn: 1,
                len: 0,
                commits_since_sync: 0,
                pending: Vec::new(),
                pre_sync: None,
                injector: None,
            },
            policy,
            path,
            stats,
            0,
        ))
    }

    /// Wraps the opened inner state, seeds the durable watermark, and
    /// spawns the group-commit thread.
    fn assemble(
        inner: WalInner,
        policy: FsyncPolicy,
        path: PathBuf,
        stats: Arc<IoStats>,
        durable_lsn: Lsn,
    ) -> Wal {
        let shared = Arc::new(WalShared {
            inner: Mutex::new(inner),
            // `EveryN(0)` can never reach a group boundary, so commits
            // would never be synced or acknowledged; every constructor
            // clamps it to `EveryN(1)` here (`TsbConfig::validate` rejects
            // it earlier for engine configs, but the WAL also stands alone).
            policy: policy.normalized(),
            stats,
            group: GroupCommit::default(),
        });
        lock_std(&shared.group.durable).lsn = durable_lsn;
        let committer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tsb-wal-commit".into())
                .spawn(move || shared.committer_loop())
                .expect("spawn the WAL group-commit thread")
        };
        Wal {
            shared,
            path,
            committer: Some(committer),
        }
    }

    /// Opens (or creates) the log at `path`, scanning every record and
    /// truncating a torn tail. The returned [`WalScan`] is the replay input;
    /// the `Wal` is positioned to append after the intact prefix.
    pub fn open(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
        stats: Arc<IoStats>,
    ) -> TsbResult<(Wal, WalScan)> {
        let path = path.as_ref().to_path_buf();
        Self::resolve_pending_reset(&path)?;
        let existed = path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if !existed {
            // See `create`: a file whose directory entry is not durable
            // can vanish in a crash along with everything fsynced into it.
            file.sync_all()?;
            sync_parent_dir(&path)?;
        }
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;

        let (records, pos, torn) = Self::scan_buf(&buf);
        let next_lsn = records.last().map(|(lsn, _)| lsn + 1).unwrap_or(1);
        if torn {
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((
            Self::assemble(
                WalInner {
                    file,
                    next_lsn,
                    len: pos as u64,
                    commits_since_sync: 0,
                    pending: Vec::new(),
                    pre_sync: None,
                    injector: None,
                },
                policy,
                path,
                stats,
                // Everything that survived on disk is as durable as it
                // will ever be.
                next_lsn - 1,
            ),
            WalScan {
                records,
                truncated_torn_tail: torn,
            },
        ))
    }

    /// Scans `buf` from the start: returns the intact records in LSN order,
    /// the byte position of the first bad frame (== `buf.len()` when the
    /// whole buffer is intact), and whether a torn tail was found. The
    /// first record may carry any LSN (checkpoint truncation keeps the
    /// sequence running across log generations); after that a
    /// discontinuity means the file was spliced or a tear was overwritten
    /// — nothing from there on is trustworthy.
    pub(crate) fn scan_buf(buf: &[u8]) -> (Vec<(Lsn, WalRecord)>, usize, bool) {
        let mut records: Vec<(Lsn, WalRecord)> = Vec::new();
        let mut pos = 0usize;
        let mut next_lsn: Lsn = 1;
        let mut torn = false;
        while pos < buf.len() {
            let Some((record_len, body)) = Self::frame_at(buf, pos) else {
                torn = true;
                break;
            };
            let Ok((lsn, record)) = WalRecord::decode_body(body) else {
                torn = true;
                break;
            };
            if !records.is_empty() && lsn != next_lsn {
                torn = true;
                break;
            }
            next_lsn = lsn + 1;
            records.push((lsn, record));
            pos += record_len;
        }
        (records, pos, torn)
    }

    /// Settles a checkpoint reset the previous process died inside of.
    ///
    /// A leftover `*.wal.tmp` next to the log means the crash landed in
    /// [`Self::reset_with`]'s write-new-then-rename window: the
    /// replacement log was (at least partially) written, and the rename
    /// making it the real log may or may not have reached the directory.
    /// Before the log is scanned, the temp file's fate is decided:
    ///
    /// * A fully intact temp file whose records carry a fence is **rolled
    ///   forward** (the rename is completed). Its content was written and
    ///   fsynced before the rename was ever attempted, so its checkpoint
    ///   promise holds — and the main log can only be an *older*
    ///   generation (nothing appends between the temp write and the
    ///   rename, and a completed rename is directory-fsynced before any
    ///   later append is acknowledged). This also keeps a first create's
    ///   interrupted checkpoint from leaving a fence-less main log that
    ///   reads as "nothing was ever durable".
    /// * Anything else — short, torn, or fence-less — is an unfinished
    ///   temp write; it is **rolled back** (deleted) and the main log
    ///   stands.
    fn resolve_pending_reset(path: &Path) -> TsbResult<()> {
        let tmp = path.with_extension("wal.tmp");
        let buf = match std::fs::read(&tmp) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let (records, pos, _) = Self::scan_buf(&buf);
        let intact = pos == buf.len() && !records.is_empty();
        let fenced = records
            .iter()
            .any(|(_, r)| matches!(r, WalRecord::Commit { .. } | WalRecord::Checkpoint { .. }));
        if intact && fenced {
            std::fs::rename(&tmp, path)?;
        } else {
            std::fs::remove_file(&tmp)?;
        }
        sync_parent_dir(path)
    }

    /// Frames the record starting at `pos`: returns `(total frame length,
    /// body slice)` if the frame is complete and its CRC matches.
    pub(crate) fn frame_at(buf: &[u8], pos: usize) -> Option<(usize, &[u8])> {
        let header = buf.get(pos..pos + 8)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len == 0 || len > MAX_RECORD_BODY {
            return None;
        }
        let body = buf.get(pos + 8..pos + 8 + len as usize)?;
        if crc32(body) != crc {
            return None;
        }
        Some((8 + len as usize, body))
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.shared.policy
    }

    /// The path of the log file. A replication tailer reads the log by
    /// *path* (not through this handle's file descriptor): a checkpoint
    /// reset replaces the file by rename, so an open descriptor goes stale
    /// while the path always names the current generation.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.shared.inner.lock().next_lsn
    }

    /// The LSN of the newest appended record (0 if the log is empty).
    pub fn last_lsn(&self) -> Lsn {
        self.shared.inner.lock().next_lsn - 1
    }

    /// The durable-LSN watermark: every record at or below it is on
    /// stable storage.
    pub fn durable_lsn(&self) -> Lsn {
        self.shared.durable_lsn()
    }

    /// Bytes of intact log on disk.
    pub fn bytes(&self) -> u64 {
        self.shared.inner.lock().len
    }

    /// Wires a fault injector into the append and sync paths (tests only).
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        self.shared.inner.lock().injector = Some(injector);
    }

    /// Installs the hook that runs before every fsync of the log (see
    /// [`WalInner::pre_sync`]); the sync is abandoned if the hook errors.
    pub fn set_pre_sync_hook(&self, hook: PreSyncHook) {
        self.shared.inner.lock().pre_sync = Some(Arc::from(hook));
    }

    /// Appends one record, returning its LSN. The frame lands in the
    /// append buffer; fence records (`Commit` / `Checkpoint`) drain the
    /// buffer to the file in one coalesced `write_all` — the whole
    /// mutation group in one syscall. A commit at a policy boundary is
    /// additionally made durable before this returns (request + park on
    /// the watermark); checkpoints always sync, on this thread. Callers
    /// that can release locks between the append and the park use
    /// [`Self::append_commit`] + [`Self::wait_durable`] instead.
    pub fn append(&self, record: &WalRecord) -> TsbResult<Lsn> {
        match record {
            WalRecord::Commit { .. } => {
                let (lsn, boundary) = self.append_commit(record)?;
                if let Some(fence) = boundary {
                    self.wait_durable(fence)?;
                }
                Ok(lsn)
            }
            WalRecord::Checkpoint { .. } => {
                let (lsn, _) = self.shared.append_record(record)?;
                self.shared.sync_to_tail(false)?;
                Ok(lsn)
            }
            _ => Ok(self.shared.append_record(record)?.0),
        }
    }

    /// Appends a commit fence and *requests* (never performs) its sync.
    /// Returns `(lsn, boundary)`: `boundary` is `Some(fence_lsn)` exactly
    /// when the policy wants this commit durable before it is
    /// acknowledged — the caller should release its locks, then
    /// [`Self::wait_durable`] on it. `None` means acknowledge immediately
    /// (`Os` always; `EveryN` off-boundary).
    pub fn append_commit(&self, record: &WalRecord) -> TsbResult<(Lsn, Option<Lsn>)> {
        debug_assert!(matches!(record, WalRecord::Commit { .. }));
        let (lsn, boundary) = self.shared.append_record(record)?;
        if let Some(fence) = boundary {
            self.shared.request_sync(fence);
        }
        Ok((lsn, boundary))
    }

    /// Parks until the durable watermark reaches `lsn`; errors if a sync
    /// failure was published (the failure is sticky).
    pub fn wait_durable(&self, lsn: Lsn) -> TsbResult<()> {
        self.shared.wait_durable(lsn)
    }

    /// Appends a record body *shipped from a replication primary*, keeping
    /// the primary's LSN instead of assigning a local one — a replica's
    /// local log is a verbatim suffix of the primary's log, so replica
    /// restart can reuse the standard recovery scan unchanged.
    ///
    /// `body` must be a record body as produced by
    /// [`WalRecord::encode_body`]. The embedded LSN must continue the local
    /// sequence (`last_lsn + 1`); the first record appended to an *empty*
    /// log may carry any LSN (exactly as the reopen scanner accepts any
    /// starting LSN across checkpoint generations). A body whose LSN is at
    /// or below the local tail is a duplicate from a reconnect overlap and
    /// is skipped (`Ok(false)`).
    ///
    /// The frame lands in the append buffer; fence records drain it, and
    /// the caller decides when to fsync (via [`Self::sync`]) — the policy's
    /// group-commit boundary arithmetic never runs for shipped records.
    /// Returns whether the record was actually appended.
    pub fn append_shipped(&self, body: &[u8]) -> TsbResult<bool> {
        let (lsn, record) = WalRecord::decode_body(body)?;
        let mut inner = self.shared.inner.lock();
        if let Some(injector) = &inner.injector {
            injector.check(CrashPoint::WalAppend)?;
        }
        let empty = inner.len == 0;
        if !empty {
            if lsn < inner.next_lsn {
                return Ok(false);
            }
            if lsn != inner.next_lsn {
                return Err(TsbError::corruption(format!(
                    "shipped record LSN {lsn} does not continue the local log \
                     (expected {})",
                    inner.next_lsn
                )));
            }
        }
        let frame_len = 8 + body.len();
        inner.pending.reserve(frame_len);
        inner
            .pending
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        inner.pending.extend_from_slice(&crc32(body).to_le_bytes());
        inner.pending.extend_from_slice(body);
        inner.next_lsn = lsn + 1;
        inner.len += frame_len as u64;
        self.shared.stats.record_wal_append();
        self.shared.stats.record_wal_bytes(frame_len as u64);
        let is_fence = matches!(
            record,
            WalRecord::Commit { .. }
                | WalRecord::Checkpoint { .. }
                | WalRecord::Prepare { .. }
                | WalRecord::Decision { .. }
        );
        if is_fence || inner.pending.len() >= APPEND_BUFFER_FLUSH_BYTES {
            inner.flush_pending()?;
        }
        Ok(true)
    }

    /// Forces everything appended so far to stable storage before
    /// returning. No-op when the tail is already durable.
    pub fn sync(&self) -> TsbResult<()> {
        self.shared.sync_to_tail(false).map(|_| ())
    }

    /// Forces the log to stable storage only if records were appended since
    /// the last fsync. This is the **flushed-LSN rule** barrier: a dirty
    /// page may reach the page device only when every log record that could
    /// be needed to reproduce (or supersede) its content is already stable,
    /// whatever the commit fsync policy says. No-op when nothing is pending.
    /// Runs on the calling thread (synchronously), possibly alongside a
    /// concurrent committer drain — both publish the watermark.
    pub fn ensure_all_synced(&self) -> TsbResult<()> {
        self.shared.sync_to_tail(false).map(|_| ())
    }

    /// Atomically replaces the whole log with a single `record` (a
    /// checkpoint), bounding the log to one generation: everything before a
    /// checkpoint fence is unreplayable by construction, so a completed
    /// checkpoint may discard it.
    ///
    /// Crash safety comes from write-new-then-rename: the replacement file
    /// is fully written and fsynced *before* it atomically takes the log's
    /// name, and the parent directory is fsynced before this returns — a
    /// rename is durable only once the directory holding the entry is, so
    /// without that sync a crash could resurrect the pre-checkpoint
    /// generation and silently drop commits fsynced into the new inode
    /// after it. A crash anywhere leaves either the complete old log, the
    /// complete new one, or the old log plus an intact temp file that
    /// [`Self::open`] rolls forward — never a fence-less hybrid. LSNs keep
    /// counting across generations (the scanner accepts any starting LSN).
    pub fn reset_with(&self, record: &WalRecord) -> TsbResult<Lsn> {
        let mut inner = self.shared.inner.lock();
        if let Some(injector) = &inner.injector {
            injector.check(CrashPoint::WalCheckpoint)?;
        }
        let lsn = inner.next_lsn;
        let body = record.encode_body(lsn);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);

        let tmp = self.path.with_extension("wal.tmp");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&frame)?;
        file.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        sync_parent_dir(&self.path)?;
        self.shared.stats.record_wal_append();
        self.shared.stats.record_wal_bytes(frame.len() as u64);
        self.shared.stats.record_wal_sync();
        inner.file = file;
        inner.next_lsn = lsn + 1;
        inner.len = frame.len() as u64;
        inner.commits_since_sync = 0;
        // Anything the old generation still buffered precedes the new
        // fence and is unreplayable by construction.
        inner.pending.clear();
        drop(inner);
        // The fence is the newest LSN and it is durable, so this jumps the
        // watermark over everything the old generation ever held: the
        // checkpoint quiesces the pipeline (parked committers wake
        // satisfied, a racing drain's stale publish is a monotonic no-op)
        // and the committer thread sees its requests already covered. A
        // drain that raced the rename fsyncs the renamed-over file handle,
        // which is harmless.
        self.shared.publish_durable(lsn);
        Ok(lsn)
    }
}

impl Drop for Wal {
    /// Shuts down and joins the group-commit thread (an in-flight drain
    /// completes first), then best-effort drains the append buffer: a
    /// *clean* shutdown keeps every appended record reachable on reopen,
    /// exactly as when appends wrote through. (A killed process loses only
    /// un-fenced buffered records, which recovery's replay cut would
    /// discard regardless.)
    fn drop(&mut self) {
        {
            let mut queue = lock_std(&self.shared.group.queue);
            queue.shutdown = true;
        }
        self.shared.group.work.notify_all();
        if let Some(committer) = self.committer.take() {
            let _ = committer.join();
        }
        let _ = self.shared.inner.lock().flush_pending();
    }
}

/// The dirty-page table backing the **WAL-before-page** invariant.
///
/// Before a dirty page may be written back to the magnetic store — by the
/// tree's flush, by the decoded-node cache's overflow write-back, or by a
/// buffer-pool eviction — the page's newest image must already be in the
/// WAL. The tree records every `PageImage` append here
/// ([`record`](Self::record)); every *device* write-back site runs the
/// full barrier ([`ensure_durable`](Self::ensure_durable)): a coverage
/// `debug_assert` plus the flushed-LSN rule — the log is forced to stable
/// storage through its newest record before the page bytes may land on
/// the device, so a power failure can never leave the device holding
/// state the surviving log cannot reproduce or supersede. Pages that are
/// legitimately outside the log (the tree's metadata page, whose content
/// is reconstructed from commit records) are registered with
/// [`exempt`](Self::exempt).
#[derive(Debug, Default)]
pub struct WalPageTable {
    /// page -> LSN of the page's newest logged record (image or delta).
    pages: Mutex<HashMap<u64, Lsn>>,
    /// Pages whose full image was logged in the current checkpoint
    /// interval (log generation) — the **first-touch** set. A content-only
    /// rewrite of a page in this set may log a delta; a page outside it
    /// must log its full image first, so replay always has an in-log base
    /// for every delta. Cleared by [`begin_interval`](Self::begin_interval)
    /// when a checkpoint resets the log.
    imaged: Mutex<HashSet<u64>>,
    /// The log to force before device write-backs (set once at attach).
    wal: Mutex<Option<Arc<Wal>>>,
}

impl WalPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wires in the log [`ensure_durable`](Self::ensure_durable) forces.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        *self.wal.lock() = Some(wal);
    }

    /// The write-back barrier: asserts WAL coverage of `page` and forces
    /// the log to stable storage through its newest record. Called by
    /// every site about to write a dirty page image to the device.
    pub fn ensure_durable(&self, page: PageId) -> TsbResult<()> {
        self.assert_covered(page);
        let wal = self.wal.lock().clone();
        match wal {
            Some(wal) => wal.ensure_all_synced(),
            None => Ok(()),
        }
    }

    /// Records that `page`'s newest record (image or delta) was appended
    /// at `lsn`.
    pub fn record(&self, page: PageId, lsn: Lsn) {
        self.pages.lock().insert(page.0, lsn);
    }

    /// Whether `page` still needs a full image in the current checkpoint
    /// interval, marking it imaged. Returns `true` exactly once per page
    /// per interval: the caller that sees `true` must log a
    /// [`WalRecord::PageImage`]; later callers may log deltas.
    pub fn first_touch(&self, page: PageId) -> bool {
        self.imaged.lock().insert(page.0)
    }

    /// Whether `page` already has an image (a delta base) in the current
    /// checkpoint interval, without marking anything. Callers about to log
    /// standalone deltas (mid-split pending ops) consult this: a page with
    /// no base skips the delta entirely — its next full write will log an
    /// image that subsumes it.
    pub fn is_imaged(&self, page: PageId) -> bool {
        self.imaged.lock().contains(&page.0)
    }

    /// Drops everything known about `page`. Called when the page is
    /// (re)allocated: a recycled page's old image is not a base for its
    /// new life — content landing on it must log a fresh full image.
    pub fn forget(&self, page: PageId) {
        self.imaged.lock().remove(&page.0);
        self.pages.lock().remove(&page.0);
    }

    /// Revokes `page`'s delta base without touching its write-back
    /// coverage: the page's next logged record must be a full image.
    /// Called when a failed mutation left pending deltas in the log that
    /// no longer describe the page's real state (see the tree's phantom
    /// quarantine in `wal_commit`).
    pub fn unimage(&self, page: PageId) {
        self.imaged.lock().remove(&page.0);
    }

    /// Starts a fresh checkpoint interval after the log was reset: every
    /// page must log a full image again before its next delta (the new log
    /// generation holds no bases), and the write-back coverage map starts
    /// over (the checkpoint's flush drained every dirty page). Exempt
    /// pages stay exempt — their content is reconstructed from fence
    /// records, never from page records.
    pub fn begin_interval(&self) {
        self.imaged.lock().clear();
        self.pages.lock().retain(|_, lsn| *lsn == 0);
    }

    /// Marks `page` as legitimately un-logged (metadata pages).
    pub fn exempt(&self, page: PageId) {
        self.pages.lock().insert(page.0, 0);
    }

    /// The LSN of `page`'s newest logged image (`Some(0)` for exempt pages).
    pub fn lsn_of(&self, page: PageId) -> Option<Lsn> {
        self.pages.lock().get(&page.0).copied()
    }

    /// Whether `page` may be written back (logged or exempt).
    pub fn is_covered(&self, page: PageId) -> bool {
        self.pages.lock().contains_key(&page.0)
    }

    /// Debug-asserts the WAL-before-page invariant for `page`.
    pub fn assert_covered(&self, page: PageId) {
        debug_assert!(
            self.is_covered(page),
            "WAL-before-page violation: page {page} is being written back to the \
             magnetic store but no PageImage record for it was ever appended to the WAL"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tsb-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.wal")
    }

    fn page_image(page: u64, fill: u8) -> WalRecord {
        WalRecord::PageImage {
            page: PageId(page),
            bytes: vec![fill; 32],
        }
    }

    fn commit(ts: u64) -> WalRecord {
        WalRecord::Commit {
            ts,
            worm_len: 0,
            meta: vec![0xAB; 16],
        }
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = temp_wal_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        let written = [
            page_image(7, 1),
            page_image(9, 2),
            commit(42),
            WalRecord::Checkpoint {
                worm_len: 128,
                meta: vec![1, 2, 3],
            },
        ];
        {
            let wal = Wal::create(&path, FsyncPolicy::Always, Arc::clone(&stats)).unwrap();
            for (i, rec) in written.iter().enumerate() {
                assert_eq!(wal.append(rec).unwrap(), (i + 1) as Lsn);
            }
            assert_eq!(wal.last_lsn(), 4);
        }
        let (wal, scan) = Wal::open(&path, FsyncPolicy::Always, stats).unwrap();
        assert!(!scan.truncated_torn_tail);
        assert_eq!(scan.records.len(), written.len());
        for (i, (lsn, rec)) in scan.records.iter().enumerate() {
            assert_eq!(*lsn, (i + 1) as Lsn);
            assert_eq!(rec, &written[i]);
        }
        // Appending continues the LSN sequence.
        assert_eq!(wal.append(&page_image(1, 3)).unwrap(), 5);
        let _ = std::fs::remove_file(&path);
    }

    fn delta(page: u64, key: u64, ts: u64) -> WalRecord {
        WalRecord::PageDelta {
            page: PageId(page),
            op: PageOp::InsertVersion(Version::committed(key, Timestamp(ts), vec![b'v'; 12])),
        }
    }

    #[test]
    fn every_page_op_round_trips() {
        let ops = [
            PageOp::InsertVersion(Version::committed(9u64, Timestamp(4), b"val".to_vec())),
            PageOp::RemoveUncommitted {
                key: Key::from_u64(7),
                txn: TxnId(3),
            },
            PageOp::DataTimeSplit {
                split_time: Timestamp(17),
            },
            PageOp::DataKeySplit {
                split_key: Key::from_u64(100),
                keep_low: true,
            },
            PageOp::IndexTimeSplit {
                split_time: Timestamp(23),
            },
            PageOp::IndexKeySplit {
                split_key: Key::from_u64(50),
                keep_low: false,
            },
            PageOp::IndexReplaceChild {
                payload: vec![1, 2, 3, 4],
            },
        ];
        for op in ops {
            let record = WalRecord::PageDelta {
                page: PageId(11),
                op: op.clone(),
            };
            let body = record.encode_body(5);
            let (lsn, decoded) = WalRecord::decode_body(&body).unwrap();
            assert_eq!(lsn, 5);
            assert_eq!(decoded, record, "op {op:?}");
        }
    }

    #[test]
    fn torn_tail_mid_delta_run_keeps_the_image_and_drops_trailing_deltas() {
        // A delta run: image base, commit, then three deltas and a commit.
        // Tearing into the *middle* delta must keep the image and the first
        // delta (everything before the tear) and drop the rest — a delta
        // run truncates record-by-record like any other tail.
        let path = temp_wal_path("torn-delta");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        {
            let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            wal.append(&page_image(1, 1)).unwrap();
            wal.append(&commit(1)).unwrap();
            wal.append(&delta(1, 10, 2)).unwrap();
            wal.append(&delta(1, 11, 3)).unwrap();
            wal.append(&delta(1, 12, 4)).unwrap();
            wal.append(&commit(4)).unwrap();
        }
        // Cut into the third delta: the commit and the tail of that delta
        // vanish; the second delta's frame stays intact.
        let len = std::fs::metadata(&path).unwrap().len();
        let commit_len = 8 + commit(4).encode_body(6).len() as u64;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - commit_len - 5).unwrap();
        drop(file);

        let (_, scan) = Wal::open(&path, FsyncPolicy::Os, stats).unwrap();
        assert!(scan.truncated_torn_tail);
        assert_eq!(scan.records.len(), 4, "image, commit, two intact deltas");
        assert!(matches!(scan.records[0].1, WalRecord::PageImage { .. }));
        assert!(matches!(scan.records[2].1, WalRecord::PageDelta { .. }));
        assert!(matches!(scan.records[3].1, WalRecord::PageDelta { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mutation_group_coalesces_into_one_file_write() {
        // Appends buffer in process memory until a fence record lands; the
        // file grows only at the commit append (one write_all per group).
        let path = temp_wal_path("coalesce");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
        wal.append(&page_image(1, 1)).unwrap();
        wal.append(&delta(1, 5, 1)).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            0,
            "non-fence records stay buffered"
        );
        wal.append(&commit(1)).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            wal.bytes(),
            "the commit flushed the whole group"
        );
        // The flushed-LSN barrier also drains the buffer (before fsync).
        wal.append(&page_image(2, 2)).unwrap();
        wal.ensure_all_synced().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), wal.bytes());
        assert_eq!(stats.snapshot().wal_bytes_appended, wal.bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn page_table_first_touch_and_interval_reset() {
        let table = WalPageTable::new();
        assert!(!table.is_imaged(PageId(3)));
        assert!(table.first_touch(PageId(3)), "first touch logs the image");
        assert!(!table.first_touch(PageId(3)), "second touch logs deltas");
        assert!(table.is_imaged(PageId(3)));
        table.record(PageId(3), 9);
        table.exempt(PageId(0));
        // A checkpoint resets the interval: bases are gone, exemptions stay.
        table.begin_interval();
        assert!(!table.is_imaged(PageId(3)));
        assert!(!table.is_covered(PageId(3)));
        assert!(
            table.is_covered(PageId(0)),
            "exempt pages survive the reset"
        );
        // Reallocation forgets a page's base entirely.
        assert!(table.first_touch(PageId(3)));
        table.record(PageId(3), 12);
        table.forget(PageId(3));
        assert!(!table.is_imaged(PageId(3)));
        assert!(!table.is_covered(PageId(3)));
    }

    #[test]
    fn torn_tail_is_truncated_to_the_intact_prefix() {
        let path = temp_wal_path("torn");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        {
            let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            wal.append(&page_image(1, 1)).unwrap();
            wal.append(&commit(1)).unwrap();
            wal.append(&page_image(2, 2)).unwrap();
        }
        // Tear the last record: cut 3 bytes off the end.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (wal, scan) = Wal::open(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
        assert!(scan.truncated_torn_tail);
        assert_eq!(scan.records.len(), 2, "intact prefix only");
        assert!(matches!(scan.records[1].1, WalRecord::Commit { ts: 1, .. }));
        // The torn bytes are gone from the file; appends restart cleanly.
        wal.append(&page_image(3, 3)).unwrap();
        drop(wal);
        let (_, rescan) = Wal::open(&path, FsyncPolicy::Os, stats).unwrap();
        assert!(!rescan.truncated_torn_tail);
        assert_eq!(rescan.records.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_crc_mid_log_discards_everything_after() {
        let path = temp_wal_path("crc");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        {
            let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            wal.append(&commit(1)).unwrap();
            wal.append(&commit(2)).unwrap();
            wal.append(&commit(3)).unwrap();
        }
        // Flip one byte in the middle record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let record_len = bytes.len() / 3;
        bytes[record_len + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, scan) = Wal::open(&path, FsyncPolicy::Os, stats).unwrap();
        assert!(scan.truncated_torn_tail);
        assert_eq!(
            scan.records.len(),
            1,
            "records after a corrupt one are untrustworthy"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_policy_governs_commit_syncs() {
        let cases: &[(FsyncPolicy, u64)] = &[
            // 6 commits: Always syncs each; EveryN(3) twice; Os never.
            (FsyncPolicy::Always, 6),
            (FsyncPolicy::EveryN(3), 2),
            (FsyncPolicy::Os, 0),
        ];
        for (policy, expected_syncs) in cases {
            let path = temp_wal_path(&format!("policy-{expected_syncs}"));
            let _ = std::fs::remove_file(&path);
            let stats = Arc::new(IoStats::new());
            let wal = Wal::create(&path, *policy, Arc::clone(&stats)).unwrap();
            for ts in 0..6 {
                wal.append(&page_image(ts, 0)).unwrap(); // images never sync
                wal.append(&commit(ts)).unwrap();
            }
            assert_eq!(
                stats.snapshot().wal_syncs,
                *expected_syncs,
                "policy {policy:?}"
            );
            // A checkpoint always syncs.
            wal.append(&WalRecord::Checkpoint {
                worm_len: 0,
                meta: vec![],
            })
            .unwrap();
            assert_eq!(stats.snapshot().wal_syncs, *expected_syncs + 1);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn every_n_zero_is_clamped_to_every_one() {
        // Regression: EveryN(0) used to be accepted verbatim. Zero-sized
        // groups never reach a boundary, so commits were buffered forever
        // and `wait_durable` would hang. The constructors now clamp to
        // EveryN(1): every commit is its own group boundary.
        let path = temp_wal_path("everyn0");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        let wal = Wal::create(&path, FsyncPolicy::EveryN(0), Arc::clone(&stats)).unwrap();
        assert_eq!(wal.policy(), FsyncPolicy::EveryN(1));
        for ts in 0..4 {
            let (lsn, boundary) = wal.append_commit(&commit(ts)).unwrap();
            assert_eq!(boundary, Some(lsn), "each commit closes its own group");
            wal.wait_durable(lsn).unwrap();
        }
        assert_eq!(stats.snapshot().wal_syncs, 4);
        drop(wal);
        let (wal, scan) = Wal::open(&path, FsyncPolicy::EveryN(0), stats).unwrap();
        assert_eq!(wal.policy(), FsyncPolicy::EveryN(1), "open clamps too");
        assert_eq!(scan.records.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_with_bounds_the_log_and_keeps_lsns_continuous() {
        let path = temp_wal_path("reset");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        {
            let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            for ts in 0..20 {
                wal.append(&page_image(ts, 0)).unwrap();
                wal.append(&commit(ts)).unwrap();
            }
            let grown = wal.bytes();
            let fence_lsn = wal
                .reset_with(&WalRecord::Checkpoint {
                    worm_len: 7,
                    meta: vec![9; 8],
                })
                .unwrap();
            assert_eq!(fence_lsn, 41, "LSNs keep counting across generations");
            assert!(wal.bytes() < grown / 10, "the log shrank to one record");
            // Appends continue on the new generation.
            assert_eq!(wal.append(&commit(99)).unwrap(), 42);
        }
        let (_, scan) = Wal::open(&path, FsyncPolicy::Os, stats).unwrap();
        assert!(!scan.truncated_torn_tail);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].0, 41, "first record keeps its high LSN");
        assert!(matches!(
            scan.records[0].1,
            WalRecord::Checkpoint { worm_len: 7, .. }
        ));
        assert_eq!(scan.records[1].0, 42);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn leftover_intact_fenced_reset_tmp_is_rolled_forward() {
        let path = temp_wal_path("tmp-fwd");
        let tmp = path.with_extension("wal.tmp");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&tmp);
        let stats = Arc::new(IoStats::new());
        {
            // An old fence-less generation (a first create's page images)…
            let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            wal.append(&page_image(1, 1)).unwrap();
            // …and a fully written replacement the crash kept from being
            // renamed: reset_with's temp file, holding the checkpoint.
            let replacement = Wal::create(&tmp, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            replacement
                .append(&WalRecord::Checkpoint {
                    worm_len: 11,
                    meta: vec![7; 8],
                })
                .unwrap();
        }
        let (_, scan) = Wal::open(&path, FsyncPolicy::Os, stats).unwrap();
        assert!(!tmp.exists(), "the rename was completed");
        assert_eq!(scan.records.len(), 1);
        assert!(
            matches!(
                scan.records[0].1,
                WalRecord::Checkpoint { worm_len: 11, .. }
            ),
            "the fenced replacement generation won, not the fence-less old one"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_discards_a_stale_reset_tmp_from_a_dead_generation() {
        let path = temp_wal_path("tmp-create");
        let tmp = path.with_extension("wal.tmp");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&tmp);
        let stats = Arc::new(IoStats::new());
        {
            // An intact, fenced temp file a dead incarnation left behind…
            let stale = Wal::create(&tmp, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            stale
                .append(&WalRecord::Checkpoint {
                    worm_len: 99,
                    meta: vec![3; 8],
                })
                .unwrap();
            // …must not outlive a fresh create: rolled forward later, it
            // would clobber the new log with the dead generation's fence.
            let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
            assert!(!tmp.exists(), "create removed the stale temp file");
            wal.append(&commit(1)).unwrap();
        }
        let (_, scan) = Wal::open(&path, FsyncPolicy::Os, stats).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.records[0].1, WalRecord::Commit { ts: 1, .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn leftover_unusable_reset_tmp_is_rolled_back() {
        for garbage in [&b"torn mid-write"[..], &[][..]] {
            let path = temp_wal_path("tmp-back");
            let tmp = path.with_extension("wal.tmp");
            let _ = std::fs::remove_file(&path);
            let stats = Arc::new(IoStats::new());
            {
                let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
                wal.append(&page_image(1, 1)).unwrap();
                wal.append(&commit(5)).unwrap();
            }
            std::fs::write(&tmp, garbage).unwrap();
            let (_, scan) = Wal::open(&path, FsyncPolicy::Os, stats).unwrap();
            assert!(!tmp.exists(), "the unfinished temp write was discarded");
            assert!(!scan.truncated_torn_tail);
            assert_eq!(scan.records.len(), 2, "the main log stands untouched");
            assert!(matches!(scan.records[1].1, WalRecord::Commit { ts: 5, .. }));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn ensure_all_synced_is_a_noop_when_clean() {
        let path = temp_wal_path("ensure");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        let wal = Wal::create(&path, FsyncPolicy::Os, Arc::clone(&stats)).unwrap();
        wal.append(&page_image(1, 1)).unwrap();
        wal.ensure_all_synced().unwrap();
        assert_eq!(
            stats.snapshot().wal_syncs,
            1,
            "pending record forced a sync"
        );
        wal.ensure_all_synced().unwrap();
        wal.ensure_all_synced().unwrap();
        assert_eq!(stats.snapshot().wal_syncs, 1, "nothing pending, no syncs");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_injector_kills_appends() {
        let path = temp_wal_path("fault");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(IoStats::new());
        let wal = Wal::create(&path, FsyncPolicy::Os, stats).unwrap();
        let injector = Arc::new(FaultInjector::new());
        wal.set_fault_injector(Arc::clone(&injector));
        injector.crash_at(CrashPoint::WalAppend, 1);
        wal.append(&commit(1)).unwrap();
        assert!(wal.append(&commit(2)).is_err());
        assert!(wal.append(&commit(3)).is_err(), "dead forever");
        assert_eq!(wal.last_lsn(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn page_table_tracks_coverage() {
        let table = WalPageTable::new();
        assert!(!table.is_covered(PageId(5)));
        table.record(PageId(5), 17);
        assert!(table.is_covered(PageId(5)));
        assert_eq!(table.lsn_of(PageId(5)), Some(17));
        table.exempt(PageId(0));
        assert!(table.is_covered(PageId(0)));
        table.assert_covered(PageId(5));
        table.assert_covered(PageId(0));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
