//! The WORM (write-once, read-many) optical-disk simulator.
//!
//! The historical database device. Two properties of the real hardware drive
//! the paper's design and are enforced here:
//!
//! 1. **Write-once sectors.** "When a sector or block is written, an
//!    error-correcting code is appended to the sector ... burned into the
//!    disk. Thus, even when a small amount of data is written, the rest of
//!    the sector is unusable" (§1). A sector can be written exactly once;
//!    rewriting returns [`TsbError::WormRewrite`].
//! 2. **Sequential append of consolidated nodes.** The TSB-tree "consolidates
//!    and appends" historical nodes to the end of the historical database
//!    (§1, §3.4); the node address is just `(offset, length)`.
//!
//! The store exposes both interfaces:
//!
//! * [`WormStore::append`] — used by the TSB-tree's migration path: a
//!   variable-length historical node is placed on the next free sector
//!   boundary and the exact payload length is recorded, so utilization is
//!   `payload / (sectors × sector_size)` and approaches 1 for large nodes.
//! * [`WormStore::allocate_extent`] / [`WormStore::write_sector`] — used by
//!   the Write-Once B-tree baseline, which allocates fixed-size node extents
//!   and burns one *new entry per sector* as the paper describes (§2.1).
//!
//! Both interfaces share the same sector space, the same write-once
//! enforcement, and the same utilization accounting, so TSB-vs-WOBT space
//! comparisons are apples-to-apples.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use tsb_common::{TsbError, TsbResult};

use crate::fault::{CrashPoint, FaultInjector};
use crate::page::HistAddr;
use crate::stats::IoStats;

/// Index of a sector on the WORM device.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SectorId(pub u64);

impl SectorId {
    /// The raw sector number.
    pub const fn value(&self) -> u64 {
        self.0
    }

    /// Byte offset of the start of this sector.
    pub const fn byte_offset(&self, sector_size: usize) -> u64 {
        self.0 * sector_size as u64
    }
}

enum Backend {
    Memory { data: Vec<u8> },
    File { file: File },
}

struct Inner {
    backend: Backend,
    /// Optional crash-injection hook consulted by `append`.
    injector: Option<Arc<FaultInjector>>,
    /// Next sector that has never been allocated.
    next_free_sector: u64,
    /// Per-sector written flag (a sector may be allocated but not yet burned,
    /// e.g. the tail of a WOBT node extent).
    written: Vec<bool>,
    /// Total bytes of real payload burned (excluding padding).
    payload_bytes: u64,
}

/// The append-only, sector-granular historical store.
pub struct WormStore {
    sector_size: usize,
    inner: Mutex<Inner>,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for WormStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WormStore")
            .field("sector_size", &self.sector_size)
            .field("sectors_allocated", &self.sectors_allocated())
            .field("payload_bytes", &self.payload_bytes())
            .finish()
    }
}

impl WormStore {
    /// Creates an in-memory WORM store.
    pub fn in_memory(sector_size: usize, stats: Arc<IoStats>) -> Self {
        WormStore {
            sector_size,
            inner: Mutex::new(Inner {
                backend: Backend::Memory { data: Vec::new() },
                injector: None,
                next_free_sector: 0,
                written: Vec::new(),
                payload_bytes: 0,
            }),
            stats,
        }
    }

    /// Opens (or creates) a file-backed WORM store.
    ///
    /// The written-sector map is reconstructed conservatively on reopen: all
    /// sectors present in the file are considered written (the device never
    /// shrinks), which preserves the write-once guarantee across restarts.
    pub fn open_file(
        path: impl AsRef<Path>,
        sector_size: usize,
        stats: Arc<IoStats>,
    ) -> TsbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let sectors = len.div_ceil(sector_size as u64);
        Ok(WormStore {
            sector_size,
            inner: Mutex::new(Inner {
                backend: Backend::File { file },
                injector: None,
                next_free_sector: sectors,
                written: vec![true; sectors as usize],
                payload_bytes: len,
            }),
            stats,
        })
    }

    /// The configured sector size in bytes.
    pub fn sector_size(&self) -> usize {
        self.sector_size
    }

    /// The shared I/O statistics sink.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Wires a fault injector into the append path (tests only).
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        self.inner.lock().injector = Some(injector);
    }

    fn write_at(inner: &mut Inner, offset: u64, bytes: &[u8]) -> TsbResult<()> {
        match &mut inner.backend {
            Backend::Memory { data } => {
                let end = (offset + bytes.len() as u64) as usize;
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[offset as usize..end].copy_from_slice(bytes);
                Ok(())
            }
            Backend::File { file } => {
                file.seek(SeekFrom::Start(offset))?;
                file.write_all(bytes)?;
                Ok(())
            }
        }
    }

    fn read_at(inner: &mut Inner, offset: u64, len: usize) -> TsbResult<Vec<u8>> {
        match &mut inner.backend {
            Backend::Memory { data } => {
                let end = offset as usize + len;
                if end > data.len() {
                    return Err(TsbError::WormOutOfBounds {
                        offset,
                        len: len as u64,
                    });
                }
                Ok(data[offset as usize..end].to_vec())
            }
            Backend::File { file } => {
                let mut buf = vec![0u8; len];
                file.seek(SeekFrom::Start(offset))?;
                file.read_exact(&mut buf)
                    .map_err(|_| TsbError::WormOutOfBounds {
                        offset,
                        len: len as u64,
                    })?;
                Ok(buf)
            }
        }
    }

    /// Appends a consolidated historical node to the end of the store.
    ///
    /// The node is placed at the next sector boundary and padded to a whole
    /// number of sectors (that padding is the only space lost — §3.4: "it is
    /// possible to come close" to perfect utilization). Returns the
    /// `(offset, length)` address used by index entries.
    pub fn append(&self, payload: &[u8]) -> TsbResult<HistAddr> {
        if payload.is_empty() {
            return Err(TsbError::internal("appending an empty historical node"));
        }
        if payload.len() > u32::MAX as usize {
            return Err(TsbError::EntryTooLarge {
                entry_size: payload.len(),
                capacity: u32::MAX as usize,
            });
        }
        let mut inner = self.inner.lock();
        if let Some(injector) = &inner.injector {
            injector.check(CrashPoint::WormAppend)?;
        }
        let sectors_needed = payload.len().div_ceil(self.sector_size) as u64;
        let first_sector = inner.next_free_sector;
        let offset = first_sector * self.sector_size as u64;

        let mut padded = payload.to_vec();
        padded.resize((sectors_needed as usize) * self.sector_size, 0);
        Self::write_at(&mut inner, offset, &padded)?;

        inner.next_free_sector += sectors_needed;
        let new_len = inner.next_free_sector as usize;
        if inner.written.len() < new_len {
            inner.written.resize(new_len, false);
        }
        for s in first_sector..first_sector + sectors_needed {
            inner.written[s as usize] = true;
        }
        inner.payload_bytes += payload.len() as u64;
        self.stats.record_worm_append();
        Ok(HistAddr::new(offset, payload.len() as u32))
    }

    /// Reads a historical node previously written by [`Self::append`].
    pub fn read(&self, addr: HistAddr) -> TsbResult<Vec<u8>> {
        let mut inner = self.inner.lock();
        self.stats.record_worm_read();
        let first_sector = addr.offset / self.sector_size as u64;
        if !addr.offset.is_multiple_of(self.sector_size as u64) {
            return Err(TsbError::corruption(format!(
                "historical address {addr} is not sector-aligned"
            )));
        }
        let last_sector = (addr.offset + addr.len.max(1) as u64 - 1) / self.sector_size as u64;
        for s in first_sector..=last_sector {
            if !inner.written.get(s as usize).copied().unwrap_or(false) {
                return Err(TsbError::WormOutOfBounds {
                    offset: addr.offset,
                    len: addr.len as u64,
                });
            }
        }
        Self::read_at(&mut inner, addr.offset, addr.len as usize)
    }

    /// Allocates `n_sectors` consecutive sectors without writing them (the
    /// WOBT's fixed-size node extents). Returns the first sector id.
    pub fn allocate_extent(&self, n_sectors: u64) -> TsbResult<SectorId> {
        if n_sectors == 0 {
            return Err(TsbError::internal("allocating a zero-sector extent"));
        }
        let mut inner = self.inner.lock();
        let first = inner.next_free_sector;
        inner.next_free_sector += n_sectors;
        let new_len = inner.next_free_sector as usize;
        if inner.written.len() < new_len {
            inner.written.resize(new_len, false);
        }
        Ok(SectorId(first))
    }

    /// Burns a single sector. The payload must fit in one sector and the
    /// sector must never have been written before — the write-once property.
    pub fn write_sector(&self, sector: SectorId, payload: &[u8]) -> TsbResult<()> {
        if payload.len() > self.sector_size {
            return Err(TsbError::EntryTooLarge {
                entry_size: payload.len(),
                capacity: self.sector_size,
            });
        }
        let mut inner = self.inner.lock();
        let idx = sector.0 as usize;
        if idx >= inner.written.len() {
            return Err(TsbError::WormOutOfBounds {
                offset: sector.byte_offset(self.sector_size),
                len: payload.len() as u64,
            });
        }
        if inner.written[idx] {
            return Err(TsbError::WormRewrite { sector: sector.0 });
        }
        let mut padded = payload.to_vec();
        padded.resize(self.sector_size, 0);
        Self::write_at(&mut inner, sector.byte_offset(self.sector_size), &padded)?;
        inner.written[idx] = true;
        inner.payload_bytes += payload.len() as u64;
        self.stats.record_worm_sector_write();
        Ok(())
    }

    /// Reads a single sector (the full sector, including padding).
    pub fn read_sector(&self, sector: SectorId) -> TsbResult<Vec<u8>> {
        let mut inner = self.inner.lock();
        self.stats.record_worm_read();
        let idx = sector.0 as usize;
        if idx >= inner.written.len() || !inner.written[idx] {
            return Err(TsbError::WormOutOfBounds {
                offset: sector.byte_offset(self.sector_size),
                len: self.sector_size as u64,
            });
        }
        Self::read_at(
            &mut inner,
            sector.byte_offset(self.sector_size),
            self.sector_size,
        )
    }

    /// Reads a raw device byte range, ignoring node boundaries — the
    /// replication source's view of the store. Commit fences carry the
    /// device length (`worm_len`) they depend on, and the store is
    /// append-only, so a primary ships history to a replica as plain byte
    /// ranges `[from, to)` between two device lengths. The range must lie
    /// within the written region.
    pub fn read_raw(&self, offset: u64, len: usize) -> TsbResult<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut inner = self.inner.lock();
        let device = inner.next_free_sector * self.sector_size as u64;
        if offset + len as u64 > device {
            return Err(TsbError::WormOutOfBounds {
                offset,
                len: len as u64,
            });
        }
        self.stats.record_worm_read();
        Self::read_at(&mut inner, offset, len)
    }

    /// Installs shipped device bytes at the current end of the store — the
    /// replica's write half of [`Self::read_raw`]. `offset` must equal the
    /// current device length (the stream is cursor-based and append-only)
    /// and the range must be whole sectors, since shipped ranges run
    /// between two `worm_len` values, which are always sector-aligned.
    /// Write-once is preserved: only never-allocated sectors are burned.
    pub fn restore_tail(&self, offset: u64, bytes: &[u8]) -> TsbResult<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        let device = inner.next_free_sector * self.sector_size as u64;
        if offset != device {
            return Err(TsbError::corruption(format!(
                "shipped WORM range starts at {offset} but the local device \
                 ends at {device}"
            )));
        }
        if !(bytes.len() as u64).is_multiple_of(self.sector_size as u64) {
            return Err(TsbError::corruption(format!(
                "shipped WORM range of {} bytes is not sector-aligned",
                bytes.len()
            )));
        }
        Self::write_at(&mut inner, offset, bytes)?;
        let sectors = bytes.len() as u64 / self.sector_size as u64;
        let first = inner.next_free_sector;
        inner.next_free_sector += sectors;
        let new_len = inner.next_free_sector as usize;
        if inner.written.len() < new_len {
            inner.written.resize(new_len, false);
        }
        for s in first..first + sectors {
            inner.written[s as usize] = true;
        }
        // Shipped ranges carry sector padding; the replica cannot tell
        // payload from padding, so utilization accounting on a replica is
        // device-granular (an overestimate, stats-only).
        inner.payload_bytes += bytes.len() as u64;
        self.stats.record_worm_append();
        Ok(())
    }

    /// Whether a sector has been burned.
    pub fn is_sector_written(&self, sector: SectorId) -> bool {
        let inner = self.inner.lock();
        inner
            .written
            .get(sector.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Total sectors allocated (written or reserved in extents).
    pub fn sectors_allocated(&self) -> u64 {
        self.inner.lock().next_free_sector
    }

    /// Sectors actually burned.
    pub fn sectors_written(&self) -> u64 {
        self.inner.lock().written.iter().filter(|w| **w).count() as u64
    }

    /// Device bytes occupied (allocated sectors × sector size). This is the
    /// paper's `SpaceO`.
    pub fn device_bytes(&self) -> u64 {
        self.sectors_allocated() * self.sector_size as u64
    }

    /// Bytes of real payload burned (excluding sector padding).
    pub fn payload_bytes(&self) -> u64 {
        self.inner.lock().payload_bytes
    }

    /// Space utilization: payload bytes / allocated device bytes, in `[0, 1]`.
    /// Returns `None` when nothing has been allocated yet.
    pub fn utilization(&self) -> Option<f64> {
        let device = self.device_bytes();
        if device == 0 {
            None
        } else {
            Some(self.payload_bytes() as f64 / device as f64)
        }
    }

    /// Flushes the file backend (no-op for the in-memory backend).
    pub fn sync(&self) -> TsbResult<()> {
        let mut inner = self.inner.lock();
        if let Backend::File { file } = &mut inner.backend {
            file.sync_all()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(sector: usize) -> WormStore {
        WormStore::in_memory(sector, Arc::new(IoStats::new()))
    }

    #[test]
    fn append_and_read_back() {
        let w = store(64);
        let a1 = w.append(b"first historical node").unwrap();
        let a2 = w.append(&[7u8; 130]).unwrap();
        assert_eq!(w.read(a1).unwrap(), b"first historical node");
        assert_eq!(w.read(a2).unwrap(), vec![7u8; 130]);
        // a1 occupies 1 sector, a2 starts on the next boundary and occupies 3.
        assert_eq!(a1.offset, 0);
        assert_eq!(a2.offset, 64);
        assert_eq!(w.sectors_allocated(), 4);
        assert_eq!(w.payload_bytes(), 21 + 130);
        let util = w.utilization().unwrap();
        assert!((util - (151.0 / 256.0)).abs() < 1e-9);
    }

    #[test]
    fn appends_never_overwrite() {
        let w = store(32);
        let mut addrs = Vec::new();
        for i in 0..50u8 {
            addrs.push((i, w.append(&vec![i; 10 + i as usize]).unwrap()));
        }
        for (i, a) in addrs {
            assert_eq!(w.read(a).unwrap(), vec![i; 10 + i as usize]);
        }
    }

    #[test]
    fn sector_rewrite_is_rejected() {
        let w = store(64);
        let ext = w.allocate_extent(4).unwrap();
        w.write_sector(ext, b"entry one").unwrap();
        let err = w.write_sector(ext, b"entry two").unwrap_err();
        assert!(matches!(err, TsbError::WormRewrite { sector: 0 }));
        // Other sectors of the extent are still writable, once each.
        w.write_sector(SectorId(ext.0 + 1), b"entry two").unwrap();
        assert!(w.is_sector_written(ext));
        assert!(w.is_sector_written(SectorId(ext.0 + 1)));
        assert!(!w.is_sector_written(SectorId(ext.0 + 2)));
    }

    #[test]
    fn unwritten_or_out_of_bounds_reads_fail() {
        let w = store(64);
        let ext = w.allocate_extent(2).unwrap();
        assert!(w.read_sector(ext).is_err(), "allocated but not burned");
        assert!(w.read_sector(SectorId(99)).is_err());
        assert!(
            w.read(HistAddr::new(0, 10)).is_err(),
            "append-style read of unwritten region"
        );
        // Unaligned historical address is corruption.
        w.write_sector(ext, b"x").unwrap();
        assert!(w.read(HistAddr::new(3, 4)).is_err());
    }

    #[test]
    fn oversized_writes_are_rejected() {
        let w = store(64);
        let ext = w.allocate_extent(1).unwrap();
        assert!(w.write_sector(ext, &[0u8; 65]).is_err());
        assert!(w.append(&[]).is_err());
    }

    #[test]
    fn extent_and_append_interleave_without_overlap() {
        let w = store(64);
        let a = w.append(&[1u8; 100]).unwrap(); // sectors 0-1
        let ext = w.allocate_extent(3).unwrap(); // sectors 2-4
        let b = w.append(&[2u8; 10]).unwrap(); // sector 5
        assert_eq!(a.offset, 0);
        assert_eq!(ext.0, 2);
        assert_eq!(b.offset, 5 * 64);
        w.write_sector(SectorId(3), b"inside extent").unwrap();
        assert_eq!(w.read(a).unwrap(), vec![1u8; 100]);
        assert_eq!(w.read(b).unwrap(), vec![2u8; 10]);
    }

    #[test]
    fn utilization_reflects_one_entry_per_sector_waste() {
        // The WOBT failure mode: small entries burned one per sector.
        let w = store(1024);
        let ext = w.allocate_extent(10).unwrap();
        for i in 0..10u64 {
            w.write_sector(SectorId(ext.0 + i), &[9u8; 40]).unwrap();
        }
        let util = w.utilization().unwrap();
        assert!(util < 0.05, "40/1024 per sector, got {util}");

        // The TSB consolidation path: the same 400 bytes appended at once.
        let w2 = store(1024);
        w2.append(&vec![9u8; 400]).unwrap();
        assert!(w2.utilization().unwrap() > 0.35);
    }

    #[test]
    fn stats_recorded() {
        let stats = Arc::new(IoStats::new());
        let w = WormStore::in_memory(64, Arc::clone(&stats));
        let a = w.append(b"abc").unwrap();
        w.read(a).unwrap();
        let ext = w.allocate_extent(1).unwrap();
        w.write_sector(ext, b"z").unwrap();
        w.read_sector(ext).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.worm_appends, 1);
        assert_eq!(s.worm_sector_writes, 1);
        assert_eq!(s.worm_reads, 2);
    }

    #[test]
    fn file_backend_round_trips_and_stays_write_once_after_reopen() {
        let dir = std::env::temp_dir().join(format!("tsb-worm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.worm");
        let _ = std::fs::remove_file(&path);

        let stats = Arc::new(IoStats::new());
        let a1;
        {
            let w = WormStore::open_file(&path, 128, Arc::clone(&stats)).unwrap();
            a1 = w.append(b"persisted historical node").unwrap();
            w.sync().unwrap();
        }
        {
            let w = WormStore::open_file(&path, 128, Arc::clone(&stats)).unwrap();
            assert_eq!(w.read(a1).unwrap(), b"persisted historical node");
            // Sector 0 was written in the previous session; it stays burned.
            assert!(w.write_sector(SectorId(0), b"overwrite").is_err());
            // New appends land after the existing data.
            let a2 = w.append(b"second").unwrap();
            assert!(a2.offset >= 128);
        }
        let _ = std::fs::remove_file(&path);
    }
}
