//! Model-based property tests for the two device simulators.
//!
//! * The magnetic store behaves like a map from allocated page ids to the
//!   last bytes written: rewrites win, freed pages disappear, recycled pages
//!   start fresh.
//! * The WORM store behaves like an append-only log: every appended record
//!   stays readable forever at its returned address, addresses never
//!   overlap, utilization accounting matches the payload written, and no
//!   burned sector can ever be rewritten.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use tsb_storage::{IoStats, MagneticStore, SectorId, WormStore};

#[derive(Clone, Debug)]
enum MagneticOp {
    Allocate,
    Write { slot: usize, len: usize },
    Free { slot: usize },
    Read { slot: usize },
}

fn magnetic_op() -> impl Strategy<Value = MagneticOp> {
    prop_oneof![
        2 => Just(MagneticOp::Allocate),
        4 => (any::<usize>(), 0usize..200).prop_map(|(slot, len)| MagneticOp::Write { slot, len }),
        1 => any::<usize>().prop_map(|slot| MagneticOp::Free { slot }),
        3 => any::<usize>().prop_map(|slot| MagneticOp::Read { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn magnetic_store_behaves_like_a_page_map(ops in prop::collection::vec(magnetic_op(), 1..120)) {
        let store = MagneticStore::in_memory(256, Arc::new(IoStats::new()));
        // Model: allocated pages and their last written contents.
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut live: Vec<u64> = Vec::new();
        let mut fill: u8 = 0;

        for op in ops {
            match op {
                MagneticOp::Allocate => {
                    let page = store.allocate().unwrap();
                    prop_assert!(!model.contains_key(&page.0), "allocation returned a live page");
                    model.insert(page.0, Vec::new());
                    live.push(page.0);
                }
                MagneticOp::Write { slot, len } => {
                    if live.is_empty() { continue; }
                    let page = live[slot % live.len()];
                    fill = fill.wrapping_add(1);
                    let data = vec![fill; len.min(store.capacity())];
                    store.write(tsb_storage::PageId(page), &data).unwrap();
                    model.insert(page, data);
                }
                MagneticOp::Free { slot } => {
                    if live.is_empty() { continue; }
                    let idx = slot % live.len();
                    let page = live.swap_remove(idx);
                    store.free(tsb_storage::PageId(page)).unwrap();
                    model.remove(&page);
                    // Reads of freed pages fail.
                    prop_assert!(store.read(tsb_storage::PageId(page)).is_err());
                }
                MagneticOp::Read { slot } => {
                    if live.is_empty() { continue; }
                    let page = live[slot % live.len()];
                    prop_assert_eq!(&store.read(tsb_storage::PageId(page)).unwrap(), &model[&page]);
                }
            }
            prop_assert_eq!(store.allocated_pages() as usize, model.len());
        }
        // Final sweep: every live page reads back its model contents.
        for (page, contents) in &model {
            prop_assert_eq!(&store.read(tsb_storage::PageId(*page)).unwrap(), contents);
        }
        let total_payload: usize = model.values().map(Vec::len).sum();
        prop_assert_eq!(store.payload_bytes() as usize, total_payload);
    }

    #[test]
    fn worm_store_is_append_only_and_accounts_exactly(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..300), 1..40),
        extent_sectors in 1u64..5,
    ) {
        let sector = 64usize;
        let store = WormStore::in_memory(sector, Arc::new(IoStats::new()));
        let mut written: Vec<(tsb_storage::HistAddr, Vec<u8>)> = Vec::new();
        let mut payload = 0u64;

        for (i, record) in records.iter().enumerate() {
            if i % 5 == 4 {
                // Occasionally interleave a raw extent allocation plus one
                // sector burn (the WOBT-style interface).
                let ext = store.allocate_extent(extent_sectors).unwrap();
                store.write_sector(ext, &record[..record.len().min(sector)]).unwrap();
                payload += record.len().min(sector) as u64;
                // The burned sector can never be rewritten.
                prop_assert!(store.write_sector(ext, b"again").is_err());
            } else {
                let addr = store.append(record).unwrap();
                // Addresses are sector aligned and never overlap earlier records.
                prop_assert_eq!(addr.offset % sector as u64, 0);
                for (prev, _) in &written {
                    let prev_end = prev.offset + (prev.len as u64).div_ceil(sector as u64) * sector as u64;
                    prop_assert!(addr.offset >= prev_end || prev.offset >= addr.offset + record.len() as u64);
                }
                payload += record.len() as u64;
                written.push((addr, record.clone()));
            }
        }
        // Everything ever appended is still readable, bit for bit.
        for (addr, record) in &written {
            prop_assert_eq!(&store.read(*addr).unwrap(), record);
        }
        prop_assert_eq!(store.payload_bytes(), payload);
        // Utilization is payload / (allocated sectors * sector size), in (0, 1].
        let util = store.utilization().unwrap();
        prop_assert!(util > 0.0 && util <= 1.0);
        prop_assert_eq!(
            store.device_bytes(),
            store.sectors_allocated() * sector as u64
        );
        // No sector that was ever burned accepts another write.
        for s in 0..store.sectors_allocated() {
            if store.is_sector_written(SectorId(s)) {
                prop_assert!(store.write_sector(SectorId(s), b"x").is_err());
            }
        }
    }
}
