//! WOBT insertion and node splitting (§2.3, §2.4).
//!
//! An insertion burns one new sector in the leaf responsible for the key.
//! When the leaf's extent is exhausted, the node is split: the current
//! versions of its records (plus the record being inserted) are consolidated
//! into one or more *new* nodes — the old node remains on the write-once
//! device — and new index entries are appended to the parent, which may
//! itself split in the same way. When the root splits, a new root is created
//! whose first entry (minimum key, minimum time) points to the old root
//! (§2.4), so that searches for old data descend through successive roots.

use tsb_common::{Key, Timestamp, TsbError, TsbResult, Version};

use crate::node::{
    encode_data_sector, encode_index_sector, pack_data_sectors, pack_index_sectors, ExtentId,
    WobtEntries, WobtIndexEntry, WobtNode, WobtNodeKind,
};
use crate::tree::Wobt;

impl Wobt {
    /// Inserts a new version of `key` with the next commit timestamp. An
    /// existing key is updated by inserting the new version; the old version
    /// remains readable as of its own time.
    pub fn insert(&mut self, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<Timestamp> {
        let ts = self.clock.tick();
        self.insert_version(Version::committed(key, ts, value))?;
        Ok(ts)
    }

    /// Inserts a new version with an explicit timestamp (replay / workload
    /// parity with the TSB-tree). The clock is advanced past `ts`.
    pub fn insert_at(
        &mut self,
        key: impl Into<Key>,
        value: Vec<u8>,
        ts: Timestamp,
    ) -> TsbResult<()> {
        if ts == Timestamp::ZERO {
            return Err(TsbError::config("timestamp 0 is reserved"));
        }
        self.clock.advance_to(ts.next());
        self.insert_version(Version::committed(key, ts, value))
    }

    /// Logically deletes `key` by inserting a tombstone version.
    pub fn delete(&mut self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        let ts = self.clock.tick();
        self.insert_version(Version::tombstone(key, ts))?;
        Ok(ts)
    }

    fn check_entry_size(&self, version: &Version) -> TsbResult<()> {
        if version.key.len() > self.cfg.max_key_len {
            return Err(TsbError::KeyTooLarge {
                len: version.key.len(),
                max: self.cfg.max_key_len,
            });
        }
        let single = encode_data_sector(std::slice::from_ref(version), Some(ExtentId(0)));
        if single.len() > self.cfg.sector_size {
            return Err(TsbError::EntryTooLarge {
                entry_size: single.len(),
                capacity: self.cfg.sector_size,
            });
        }
        Ok(())
    }

    fn insert_version(&mut self, version: Version) -> TsbResult<()> {
        self.check_entry_size(&version)?;
        // "The current time must be used to timestamp the new index terms"
        // (§2.5): the current time of this insertion is the inserted
        // version's own commit time, so that a search as of exactly that
        // time still follows the new index entries.
        let now = version.commit_time().unwrap_or_else(|| self.clock.now());
        let path = self.descend_path(&version.key, Timestamp::MAX)?;
        let (leaf, leaf_separator) = path.last().expect("non-empty path").clone();
        let leaf_node = self.read_node(leaf)?;

        if leaf_node.sectors_used < self.cfg.node_sectors {
            // The normal case: burn one sector holding the single new record.
            let image = encode_data_sector(std::slice::from_ref(&version), None);
            return self.append_sector(leaf, leaf_node.sectors_used, &image);
        }

        // The leaf is full: split it, consolidating its current versions plus
        // the incoming record into new node(s), and post the new index
        // entries to the parent.
        let new_entries =
            self.split_data_node(&leaf_node, leaf, &leaf_separator, &[version], now)?;
        self.post_to_parent(&path[..path.len() - 1], new_entries, now)
    }

    /// Splits a full data node: consolidates its current versions (plus
    /// `extra` incoming records) into one or more new nodes and returns the
    /// index entries to post to the parent.
    fn split_data_node(
        &mut self,
        node: &WobtNode,
        old_extent: ExtentId,
        old_separator: &Key,
        extra: &[Version],
        now: Timestamp,
    ) -> TsbResult<Vec<WobtIndexEntry>> {
        // Current versions as the paper defines them: the last entry per key,
        // with the incoming records appended (they are the newest of all).
        let mut combined = node.data_entries()?.to_vec();
        combined.extend_from_slice(extra);
        let snapshot_node = WobtNode {
            kind: WobtNodeKind::Data,
            entries: WobtEntries::Data(combined),
            sectors_used: node.sectors_used,
            back_pointer: node.back_pointer,
        };
        let mut current = snapshot_node.current_data_versions(Timestamp::MAX)?;
        current.sort_by(|a, b| a.key.cmp(&b.key));

        // Chunk by key so that each new node's consolidated content fits in
        // half an extent (leaving the other half for future insertions).
        // One chunk = the paper's "split by current time only"; several
        // chunks = "split by key value and current time".
        let budget = self.cfg.consolidation_budget();
        let chunks = chunk_by_size(
            &current,
            |batch| {
                pack_data_sectors(batch, Some(old_extent), self.cfg.sector_size)
                    .map(|sectors| sectors.len() * self.cfg.sector_size)
            },
            budget,
        )?;

        let mut entries = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            let images = pack_data_sectors(chunk, Some(old_extent), self.cfg.sector_size)?;
            let extent = self.write_new_node(&images)?;
            let key = if i == 0 {
                old_separator.clone()
            } else {
                chunk
                    .first()
                    .map(|v| v.key.clone())
                    .unwrap_or_else(|| old_separator.clone())
            };
            entries.push(WobtIndexEntry {
                key,
                ts: now,
                child: extent,
            });
        }
        Ok(entries)
    }

    /// Posts freshly created index entries to the parent at the end of
    /// `path` (or grows a new root if the split node was the root). The
    /// entries are packed together — they are written at the same time, so
    /// they can share sectors (§2.1's consolidation applies to them too).
    fn post_to_parent(
        &mut self,
        path: &[(ExtentId, Key)],
        entries: Vec<WobtIndexEntry>,
        now: Timestamp,
    ) -> TsbResult<()> {
        let Some((parent, parent_separator)) = path.last().cloned() else {
            return self.grow_root(entries);
        };
        let parent_node = self.read_node(parent)?;
        let images = pack_index_sectors(&entries, self.cfg.sector_size)?;
        let free = self.cfg.node_sectors - parent_node.sectors_used;
        if (images.len() as u64) <= free {
            for (i, image) in images.iter().enumerate() {
                self.append_sector(parent, parent_node.sectors_used + i as u64, image)?;
            }
            return Ok(());
        }

        // Parent full: split it. The current index entries plus the entries
        // being posted are consolidated into new index node(s).
        let new_parent_entries =
            self.split_index_node(&parent_node, &parent_separator, &entries, now)?;
        self.post_to_parent(&path[..path.len() - 1], new_parent_entries, now)
    }

    /// Splits a full index node analogously to a data node.
    fn split_index_node(
        &mut self,
        node: &WobtNode,
        old_separator: &Key,
        extra: &[WobtIndexEntry],
        now: Timestamp,
    ) -> TsbResult<Vec<WobtIndexEntry>> {
        let mut combined = node.index_entries()?.to_vec();
        combined.extend_from_slice(extra);
        let snapshot_node = WobtNode {
            kind: WobtNodeKind::Index,
            entries: WobtEntries::Index(combined),
            sectors_used: node.sectors_used,
            back_pointer: None,
        };
        let mut current = snapshot_node.current_index_entries(Timestamp::MAX)?;
        current.sort_by(|a, b| a.key.cmp(&b.key));

        let budget = self.cfg.consolidation_budget();
        let chunks = chunk_by_size(
            &current,
            |batch| {
                pack_index_sectors(batch, self.cfg.sector_size)
                    .map(|sectors| sectors.len() * self.cfg.sector_size)
            },
            budget,
        )?;

        let mut entries = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            let images = pack_index_sectors(chunk, self.cfg.sector_size)?;
            let extent = self.write_new_node(&images)?;
            let key = if i == 0 {
                old_separator.clone()
            } else {
                chunk
                    .first()
                    .map(|e| e.key.clone())
                    .unwrap_or_else(|| old_separator.clone())
            };
            entries.push(WobtIndexEntry {
                key,
                ts: now,
                child: extent,
            });
        }
        Ok(entries)
    }

    /// Creates a new root above the old one (§2.4). The new root's first
    /// entry has the lowest key value and the lowest time value and points to
    /// the old root; the freshly posted entries follow.
    fn grow_root(&mut self, entries: Vec<WobtIndexEntry>) -> TsbResult<()> {
        let mut root_entries = vec![WobtIndexEntry {
            key: Key::MIN,
            ts: Timestamp::ZERO,
            child: self.root,
        }];
        root_entries.extend(entries);
        let image = encode_index_sector(&root_entries);
        if image.len() > self.cfg.sector_size {
            let images = pack_index_sectors(&root_entries, self.cfg.sector_size)?;
            let extent = self.write_new_node(&images)?;
            self.root = extent;
        } else {
            let extent = self.write_new_node(&[image])?;
            self.root = extent;
        }
        self.root_history.push(self.root);
        Ok(())
    }
}

/// Greedily chunks `items` so that each chunk's measured size stays within
/// `budget`. Every chunk is non-empty; a single item larger than the budget
/// gets a chunk of its own (its own node), which keeps the structure able to
/// make progress.
fn chunk_by_size<T: Clone, F>(items: &[T], measure: F, budget: usize) -> TsbResult<Vec<Vec<T>>>
where
    F: Fn(&[T]) -> TsbResult<usize>,
{
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut batch: Vec<T> = Vec::new();
    for item in items {
        batch.push(item.clone());
        if batch.len() > 1 && measure(&batch)? > budget {
            let overflow = batch.pop().expect("just pushed");
            chunks.push(std::mem::take(&mut batch));
            batch.push(overflow);
        }
    }
    if !batch.is_empty() || chunks.is_empty() {
        chunks.push(batch);
    }
    Ok(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::WobtConfig;

    #[test]
    fn insert_and_read_back_across_many_splits() {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        for i in 0..200u64 {
            w.insert(i, format!("value-{i}").into_bytes()).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(
                w.get_current(&Key::from_u64(i)).unwrap().unwrap(),
                format!("value-{i}").into_bytes(),
                "key {i}"
            );
        }
        assert!(w.root_history().len() > 1, "the root must have split");
    }

    #[test]
    fn updates_keep_old_versions_readable_as_of_their_time() {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        let mut log = Vec::new();
        for round in 0..40u64 {
            for key in 0..5u64 {
                let value = format!("k{key}-r{round}");
                let ts = w.insert(key, value.clone().into_bytes()).unwrap();
                log.push((key, ts, value));
            }
        }
        for (key, ts, value) in &log {
            assert_eq!(
                w.get_as_of(&Key::from_u64(*key), *ts).unwrap().unwrap(),
                value.clone().into_bytes()
            );
        }
    }

    #[test]
    fn each_insert_burns_at_least_one_sector() {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        let before = w.worm().sectors_written();
        for i in 0..20u64 {
            w.insert(i, b"x".to_vec()).unwrap();
        }
        let after = w.worm().sectors_written();
        assert!(
            after - before >= 20,
            "one new entry per sector: {} sectors for 20 inserts",
            after - before
        );
    }

    #[test]
    fn deletes_hide_keys_from_current_reads_only() {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        let t1 = w.insert(9u64, b"here".to_vec()).unwrap();
        w.delete(9u64).unwrap();
        assert!(w.get_current(&Key::from_u64(9)).unwrap().is_none());
        assert_eq!(
            w.get_as_of(&Key::from_u64(9), t1).unwrap().unwrap(),
            b"here".to_vec()
        );
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        assert!(matches!(
            w.insert(1u64, vec![0u8; 1000]),
            Err(TsbError::EntryTooLarge { .. })
        ));
        assert!(matches!(
            w.insert(vec![b'k'; 100], b"v".to_vec()),
            Err(TsbError::KeyTooLarge { .. })
        ));
    }

    #[test]
    fn chunking_respects_budget_and_loses_nothing() {
        let items: Vec<u32> = (0..50).collect();
        let chunks = chunk_by_size(&items, |batch| Ok(batch.len() * 10), 100).unwrap();
        assert!(chunks.iter().all(|c| c.len() <= 10));
        let flattened: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flattened, items);

        // A single over-budget item still gets its own chunk.
        let chunks = chunk_by_size(&[1u32], |_| Ok(1000), 100).unwrap();
        assert_eq!(chunks, vec![vec![1u32]]);

        // Empty input yields one empty chunk (the caller writes an empty node).
        let chunks = chunk_by_size(&[] as &[u32], |_| Ok(0), 100).unwrap();
        assert_eq!(chunks.len(), 1);
    }
}
