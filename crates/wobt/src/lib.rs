//! # tsb-wobt — the Write-Once B-tree baseline
//!
//! Easton's Write-Once B-tree (WOBT), as described in §2 of Lomet &
//! Salzberg's *Access Methods for Multiversion Data* (SIGMOD 1989). The WOBT
//! is the structure the Time-Split B-tree improves upon, and it is the
//! baseline every space/redundancy experiment in this workspace compares
//! against.
//!
//! The WOBT lives **entirely on the write-once store**
//! ([`tsb_storage::WormStore`]). Its defining behaviours — all reproduced
//! here — are:
//!
//! * nodes are fixed-size extents of WORM sectors; entries are kept in
//!   **insertion order** (nothing can ever be rearranged in place);
//! * every individual insertion burns **one new sector** holding a single
//!   entry, because the sector is the smallest writable unit — this is the
//!   space waste §1 and §2.6 describe;
//! * a full node is split **by key value and current time** (two new nodes)
//!   or **by current time only** (one new node); only the *current* versions
//!   of records are copied, consolidated into packed sectors, and the old
//!   node remains in place — so every "reorganization" duplicates all
//!   current data;
//! * the structure is a DAG: old and new index nodes may reference the same
//!   children; a list of successive root addresses is kept;
//! * new data nodes carry a **backward pointer** to the node they were split
//!   from, which is how all past versions of a record are collected (§2.5).
//!
//! The query surface mirrors the TSB-tree's: current lookups, as-of lookups,
//! snapshots at a past time, and full version histories, so the two
//! structures can run identical workloads in the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod insert;
pub mod node;
pub mod query;
pub mod stats;
pub mod tree;

pub use node::{ExtentId, WobtIndexEntry, WobtNode, WobtNodeKind};
pub use stats::WobtStats;
pub use tree::{Wobt, WobtConfig};
