//! WOBT nodes: fixed-size WORM extents holding insertion-ordered entries.
//!
//! A node occupies `node_sectors` consecutive sectors. Sector 0 is written
//! when the node is created (by a split, or the initial root) and carries
//! the node header plus the consolidated entries copied from the old node;
//! each later insertion burns the next free sector with a single new entry
//! (§2.1: "there is exactly one newly inserted record in a sector of a leaf
//! node, even if there is room for more than one record in a sector").
//!
//! Because sectors are write-once, the in-memory [`WobtNode`] is a read-only
//! reconstruction: the concatenation of all written sectors' entries in
//! order. Mutation happens only by burning further sectors (see
//! [`crate::insert`]).

use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::{Key, Timestamp, TsbError, TsbResult, Version};
use tsb_storage::SectorId;

/// Identifier of a WOBT node: the first sector of its extent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExtentId(pub u64);

impl ExtentId {
    /// The first sector of the extent.
    pub fn first_sector(&self) -> SectorId {
        SectorId(self.0)
    }

    /// The `i`-th sector of the extent.
    pub fn sector(&self, i: u64) -> SectorId {
        SectorId(self.0 + i)
    }
}

impl std::fmt::Display for ExtentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "extent:{}", self.0)
    }
}

/// Kind of a WOBT node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WobtNodeKind {
    /// Leaf node holding record versions.
    Data,
    /// Internal node holding `(key, timestamp, child)` triples.
    Index,
}

/// An index entry: `(key, timestamp, child extent)`, in insertion order. The
/// same key may occur several times; the *last* occurrence for a key is the
/// current one (Figure 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WobtIndexEntry {
    /// Separator key: the child holds keys `>=` this key (for its time).
    pub key: Key,
    /// Timestamp of the entry (the split time that created the reference).
    pub ts: Timestamp,
    /// The referenced child node.
    pub child: ExtentId,
}

/// Entries stored in a node, preserving insertion order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WobtEntries {
    /// Record versions of a data node.
    Data(Vec<Version>),
    /// Index entries of an index node.
    Index(Vec<WobtIndexEntry>),
}

impl WobtEntries {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            WobtEntries::Data(v) => v.len(),
            WobtEntries::Index(v) => v.len(),
        }
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory reconstruction of a WOBT node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WobtNode {
    /// The node kind.
    pub kind: WobtNodeKind,
    /// Entries in insertion order across all written sectors.
    pub entries: WobtEntries,
    /// Number of sectors of the extent that have been written.
    pub sectors_used: u64,
    /// For data nodes created by a split: the node they were split from
    /// (§2.5's backward pointer).
    pub back_pointer: Option<ExtentId>,
}

impl WobtNode {
    /// The data versions, failing if this is an index node.
    pub fn data_entries(&self) -> TsbResult<&[Version]> {
        match &self.entries {
            WobtEntries::Data(v) => Ok(v),
            WobtEntries::Index(_) => Err(TsbError::corruption(
                "expected a WOBT data node, found an index node",
            )),
        }
    }

    /// The index entries, failing if this is a data node.
    pub fn index_entries(&self) -> TsbResult<&[WobtIndexEntry]> {
        match &self.entries {
            WobtEntries::Index(v) => Ok(v),
            WobtEntries::Data(_) => Err(TsbError::corruption(
                "expected a WOBT index node, found a data node",
            )),
        }
    }

    /// The newest version of each key, in the order keys first appear —
    /// "the most recent versions of records", which are what splits copy.
    /// Versions with commit time greater than `as_of` are ignored.
    pub fn current_data_versions(&self, as_of: Timestamp) -> TsbResult<Vec<Version>> {
        let entries = self.data_entries()?;
        let mut latest: Vec<Version> = Vec::new();
        for v in entries {
            let t = match v.commit_time() {
                Some(t) if t <= as_of => t,
                _ => continue,
            };
            let _ = t;
            match latest.iter_mut().find(|e| e.key == v.key) {
                Some(slot) => *slot = v.clone(),
                None => latest.push(v.clone()),
            }
        }
        Ok(latest)
    }

    /// The last (current) index entry per key value, preserving first-seen
    /// key order, ignoring entries newer than `as_of`.
    pub fn current_index_entries(&self, as_of: Timestamp) -> TsbResult<Vec<WobtIndexEntry>> {
        let entries = self.index_entries()?;
        let mut latest: Vec<WobtIndexEntry> = Vec::new();
        for e in entries {
            if e.ts > as_of {
                continue;
            }
            match latest.iter_mut().find(|x| x.key == e.key) {
                Some(slot) => *slot = e.clone(),
                None => latest.push(e.clone()),
            }
        }
        Ok(latest)
    }

    /// The child to follow when searching for `key` as of `as_of`: the last
    /// entry listed with the largest key not exceeding `key` (the paper's
    /// search rule, §2.2 / §2.5).
    pub fn route(&self, key: &Key, as_of: Timestamp) -> TsbResult<Option<ExtentId>> {
        let entries = self.index_entries()?;
        let mut best: Option<&WobtIndexEntry> = None;
        for e in entries {
            if e.ts > as_of || e.key > *key {
                continue;
            }
            match best {
                None => best = Some(e),
                Some(b) => {
                    // Larger key wins; equal key: later in insertion order wins.
                    if e.key >= b.key {
                        best = Some(e);
                    }
                }
            }
        }
        Ok(best.map(|e| e.child))
    }
}

// ----- sector encoding ------------------------------------------------------

/// Tag for a sector belonging to a data node.
pub const SECTOR_DATA_TAG: u8 = 0x11;
/// Tag for a sector belonging to an index node.
pub const SECTOR_INDEX_TAG: u8 = 0x22;

/// Encodes one sector's worth of data entries.
pub fn encode_data_sector(entries: &[Version], back_pointer: Option<ExtentId>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(SECTOR_DATA_TAG);
    match back_pointer {
        Some(e) => {
            w.put_u8(1);
            w.put_u64(e.0);
        }
        None => w.put_u8(0),
    }
    w.put_u16(entries.len() as u16);
    for v in entries {
        w.put_version(v);
    }
    w.into_vec()
}

/// Encodes one sector's worth of index entries.
pub fn encode_index_sector(entries: &[WobtIndexEntry]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(SECTOR_INDEX_TAG);
    w.put_u8(0);
    w.put_u16(entries.len() as u16);
    for e in entries {
        w.put_key(&e.key);
        w.put_timestamp(e.ts);
        w.put_u64(e.child.0);
    }
    w.into_vec()
}

/// A decoded sector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedSector {
    /// The node kind this sector belongs to.
    pub kind: WobtNodeKind,
    /// Back pointer recorded in this sector (normally only in sector 0).
    pub back_pointer: Option<ExtentId>,
    /// Entries in this sector, in order.
    pub entries: WobtEntries,
}

/// Decodes a sector image.
pub fn decode_sector(bytes: &[u8]) -> TsbResult<DecodedSector> {
    let mut r = ByteReader::new(bytes);
    let tag = r.get_u8()?;
    let bp = match r.get_u8()? {
        0 => None,
        1 => Some(ExtentId(r.get_u64()?)),
        t => {
            return Err(TsbError::corruption(format!(
                "invalid back-pointer tag {t}"
            )))
        }
    };
    let count = r.get_u16()? as usize;
    match tag {
        SECTOR_DATA_TAG => {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                out.push(r.get_version()?);
            }
            Ok(DecodedSector {
                kind: WobtNodeKind::Data,
                back_pointer: bp,
                entries: WobtEntries::Data(out),
            })
        }
        SECTOR_INDEX_TAG => {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let key = r.get_key()?;
                let ts = r.get_timestamp()?;
                let child = ExtentId(r.get_u64()?);
                out.push(WobtIndexEntry { key, ts, child });
            }
            Ok(DecodedSector {
                kind: WobtNodeKind::Index,
                back_pointer: bp,
                entries: WobtEntries::Index(out),
            })
        }
        t => Err(TsbError::corruption(format!("unknown WOBT sector tag {t}"))),
    }
}

/// Packs entries into as few sector images as possible, greedily filling each
/// sector up to `sector_size` (consolidation, used when a split copies the
/// current versions into a new node).
pub fn pack_data_sectors(
    entries: &[Version],
    back_pointer: Option<ExtentId>,
    sector_size: usize,
) -> TsbResult<Vec<Vec<u8>>> {
    let mut sectors = Vec::new();
    let mut batch: Vec<Version> = Vec::new();
    let mut first = true;
    for v in entries {
        batch.push(v.clone());
        let bp = if first { back_pointer } else { None };
        if encode_data_sector(&batch, bp).len() > sector_size {
            let overflow = batch.pop().expect("just pushed");
            if batch.is_empty() {
                return Err(TsbError::EntryTooLarge {
                    entry_size: encode_data_sector(&[overflow], bp).len(),
                    capacity: sector_size,
                });
            }
            sectors.push(encode_data_sector(&batch, bp));
            first = false;
            batch = vec![overflow];
        }
    }
    if !batch.is_empty() || sectors.is_empty() {
        let bp = if first { back_pointer } else { None };
        sectors.push(encode_data_sector(&batch, bp));
    }
    Ok(sectors)
}

/// Packs index entries into as few sector images as possible.
pub fn pack_index_sectors(
    entries: &[WobtIndexEntry],
    sector_size: usize,
) -> TsbResult<Vec<Vec<u8>>> {
    let mut sectors = Vec::new();
    let mut batch: Vec<WobtIndexEntry> = Vec::new();
    for e in entries {
        batch.push(e.clone());
        if encode_index_sector(&batch).len() > sector_size {
            let overflow = batch.pop().expect("just pushed");
            if batch.is_empty() {
                return Err(TsbError::EntryTooLarge {
                    entry_size: encode_index_sector(&[overflow]).len(),
                    capacity: sector_size,
                });
            }
            sectors.push(encode_index_sector(&batch));
            batch = vec![overflow];
        }
    }
    if !batch.is_empty() || sectors.is_empty() {
        sectors.push(encode_index_sector(&batch));
    }
    Ok(sectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(key: u64, ts: u64, val: &str) -> Version {
        Version::committed(key, Timestamp(ts), val.as_bytes().to_vec())
    }

    #[test]
    fn sector_round_trip_data_and_index() {
        let data = vec![v(50, 1, "Joe"), v(60, 2, "Pete"), v(60, 4, "Pete2")];
        let bytes = encode_data_sector(&data, Some(ExtentId(9)));
        let decoded = decode_sector(&bytes).unwrap();
        assert_eq!(decoded.kind, WobtNodeKind::Data);
        assert_eq!(decoded.back_pointer, Some(ExtentId(9)));
        assert_eq!(decoded.entries, WobtEntries::Data(data));

        let index = vec![
            WobtIndexEntry {
                key: Key::MIN,
                ts: Timestamp(0),
                child: ExtentId(1),
            },
            WobtIndexEntry {
                key: Key::from_u64(70),
                ts: Timestamp(5),
                child: ExtentId(4),
            },
        ];
        let bytes = encode_index_sector(&index);
        let decoded = decode_sector(&bytes).unwrap();
        assert_eq!(decoded.kind, WobtNodeKind::Index);
        assert_eq!(decoded.back_pointer, None);
        assert_eq!(decoded.entries, WobtEntries::Index(index));

        assert!(decode_sector(&[0x99, 0, 0, 0]).is_err());
        assert!(decode_sector(&bytes[..3]).is_err());
    }

    #[test]
    fn packing_consolidates_multiple_entries_per_sector() {
        let entries: Vec<Version> = (0..10).map(|i| v(i, i + 1, "x")).collect();
        let sectors = pack_data_sectors(&entries, Some(ExtentId(3)), 128).unwrap();
        assert!(
            sectors.len() < entries.len(),
            "consolidation should put several entries per sector"
        );
        // Round trip through decoding preserves order and count.
        let mut decoded = Vec::new();
        let mut bp = None;
        for (i, s) in sectors.iter().enumerate() {
            let d = decode_sector(s).unwrap();
            if i == 0 {
                bp = d.back_pointer;
            }
            match d.entries {
                WobtEntries::Data(mut vs) => decoded.append(&mut vs),
                WobtEntries::Index(_) => panic!("wrong kind"),
            }
        }
        assert_eq!(decoded, entries);
        assert_eq!(bp, Some(ExtentId(3)));
        // Every sector respects the size limit.
        for s in &sectors {
            assert!(s.len() <= 128);
        }
    }

    #[test]
    fn packing_rejects_an_entry_larger_than_a_sector() {
        let huge = Version::committed(1u64, Timestamp(1), vec![0u8; 500]);
        assert!(pack_data_sectors(&[huge], None, 64).is_err());
        let entries = vec![WobtIndexEntry {
            key: Key::from_bytes(vec![b'k'; 200]),
            ts: Timestamp(1),
            child: ExtentId(0),
        }];
        assert!(pack_index_sectors(&entries, 64).is_err());
    }

    #[test]
    fn current_versions_take_the_last_entry_per_key() {
        let node = WobtNode {
            kind: WobtNodeKind::Data,
            entries: WobtEntries::Data(vec![
                v(50, 1, "Joe"),
                v(60, 2, "Pete"),
                v(60, 4, "Mary"),
                v(70, 3, "Sue"),
            ]),
            sectors_used: 4,
            back_pointer: None,
        };
        let current = node.current_data_versions(Timestamp::MAX).unwrap();
        assert_eq!(current.len(), 3);
        assert_eq!(current[1].value, Some(b"Mary".to_vec()));
        // As of T=2 the current version of 60 is Pete and 70 doesn't exist yet.
        let as_of_2 = node.current_data_versions(Timestamp(2)).unwrap();
        assert_eq!(as_of_2.len(), 2);
        assert_eq!(as_of_2[1].value, Some(b"Pete".to_vec()));
    }

    #[test]
    fn routing_follows_the_paper_rule() {
        // Figure 2: entries in insertion order, same key may repeat; the last
        // pair with the largest key <= search key wins.
        let node = WobtNode {
            kind: WobtNodeKind::Index,
            entries: WobtEntries::Index(vec![
                WobtIndexEntry {
                    key: Key::from_u64(50),
                    ts: Timestamp(1),
                    child: ExtentId(1),
                },
                WobtIndexEntry {
                    key: Key::from_u64(100),
                    ts: Timestamp(1),
                    child: ExtentId(2),
                },
                WobtIndexEntry {
                    key: Key::from_u64(50),
                    ts: Timestamp(5),
                    child: ExtentId(3),
                },
                WobtIndexEntry {
                    key: Key::from_u64(100),
                    ts: Timestamp(5),
                    child: ExtentId(4),
                },
            ]),
            sectors_used: 2,
            back_pointer: None,
        };
        // Key 60 as of now: largest key <= 60 is 50, last listed 50-entry is extent 3.
        assert_eq!(
            node.route(&Key::from_u64(60), Timestamp::MAX).unwrap(),
            Some(ExtentId(3))
        );
        // Key 60 as of T=2: entries with ts>2 ignored, so extent 1.
        assert_eq!(
            node.route(&Key::from_u64(60), Timestamp(2)).unwrap(),
            Some(ExtentId(1))
        );
        // Key 200 as of now: routes through the last 100-entry.
        assert_eq!(
            node.route(&Key::from_u64(200), Timestamp::MAX).unwrap(),
            Some(ExtentId(4))
        );
        // A key below every separator finds nothing.
        assert_eq!(
            node.route(&Key::from_u64(10), Timestamp::MAX).unwrap(),
            None
        );
    }
}
