//! WOBT temporal queries (§2.5): database snapshots at a past time and full
//! version histories via backward pointers.

use std::collections::{BTreeMap, HashSet};

use tsb_common::{Key, KeyBound, KeyRange, Timestamp, TsbResult, Version};

use crate::node::{ExtentId, WobtNodeKind};
use crate::tree::Wobt;

impl Wobt {
    /// A snapshot of the database as of `ts`: every key alive at that time
    /// with its governing value, in key order (§2.5: "obtain the last
    /// entries in each index node for each key before or at T, and finally
    /// the last copies of each record before or at T").
    pub fn snapshot_at(&self, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.scan_as_of(&KeyRange::full(), ts)
    }

    /// Every `(key, value)` in `range` as of `ts`, in key order.
    pub fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        let mut out = BTreeMap::new();
        self.scan_node(self.root, range.clone(), ts, &mut out)?;
        Ok(out.into_iter().collect())
    }

    /// Every key currently alive with its newest value.
    pub fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.scan_as_of(range, Timestamp::MAX)
    }

    fn scan_node(
        &self,
        extent: ExtentId,
        range: KeyRange,
        ts: Timestamp,
        out: &mut BTreeMap<Key, Vec<u8>>,
    ) -> TsbResult<()> {
        if range.is_empty() {
            return Ok(());
        }
        let node = self.read_node(extent)?;
        match node.kind {
            WobtNodeKind::Data => {
                for v in node.current_data_versions(ts)? {
                    if range.contains(&v.key) && !v.is_tombstone() {
                        if let Some(value) = v.value {
                            out.insert(v.key, value);
                        }
                    }
                }
            }
            WobtNodeKind::Index => {
                // The current entries as of `ts` partition the key space at
                // that time; child i is responsible for [key_i, key_{i+1}).
                // Clipping each child to its responsibility range prevents
                // stale copies in older nodes from overriding newer versions
                // owned by a sibling.
                let mut current = node.current_index_entries(ts)?;
                current.sort_by(|a, b| a.key.cmp(&b.key));
                for (i, entry) in current.iter().enumerate() {
                    let upper = match current.get(i + 1) {
                        Some(next) => KeyBound::Finite(next.key.clone()),
                        None => KeyBound::PlusInfinity,
                    };
                    let child_range = KeyRange::new(entry.key.clone(), upper);
                    let clipped = child_range.intersection(&range);
                    self.scan_node(entry.child, clipped, ts, out)?;
                }
            }
        }
        Ok(())
    }

    /// Number of keys alive in `range` as of `ts`.
    pub fn count_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<usize> {
        Ok(self.scan_as_of(range, ts)?.len())
    }

    /// All committed versions of `key`, oldest first, found by following the
    /// backward pointers from the current leaf (§2.5). Duplicated copies are
    /// reported once.
    pub fn versions(&self, key: &Key) -> TsbResult<Vec<Version>> {
        let path = self.descend_path(key, Timestamp::MAX)?;
        let (leaf, _) = *path.last().expect("non-empty path");
        let mut seen_extents: HashSet<ExtentId> = HashSet::new();
        let mut seen_times: HashSet<Timestamp> = HashSet::new();
        let mut versions: Vec<Version> = Vec::new();

        let mut cursor = Some(leaf);
        while let Some(extent) = cursor {
            if !seen_extents.insert(extent) {
                break;
            }
            let node = self.read_node(extent)?;
            let entries = node.data_entries()?;
            let mut found_any = false;
            for v in entries.iter().filter(|v| v.key == *key) {
                found_any = true;
                if let Some(t) = v.commit_time() {
                    if seen_times.insert(t) {
                        versions.push(v.clone());
                    }
                }
            }
            // "Follow the backwards pointers until a leaf node is encountered
            // which contains no earlier version of the record." The first
            // node of the chain may legitimately not contain the key yet
            // (brand-new key), so only stop early after the key has appeared.
            if !found_any && !versions.is_empty() {
                break;
            }
            cursor = node.back_pointer;
        }
        versions.sort_by_key(|v| v.commit_time().unwrap_or(Timestamp::MAX));
        Ok(versions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::WobtConfig;

    fn build() -> (Wobt, Vec<(u64, Timestamp, String)>) {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        let mut log = Vec::new();
        for i in 0..200u64 {
            let key = i % 20;
            let value = format!("k{key}-gen{}", i / 20);
            let ts = w.insert(key, value.clone().into_bytes()).unwrap();
            log.push((key, ts, value));
        }
        (w, log)
    }

    #[test]
    fn snapshots_reconstruct_past_states() {
        let (w, log) = build();
        let mid_ts = log[log.len() / 2].1;
        let snap = w.snapshot_at(mid_ts).unwrap();
        let mut expected: BTreeMap<u64, String> = BTreeMap::new();
        for (key, ts, value) in &log {
            if *ts <= mid_ts {
                expected.insert(*key, value.clone());
            }
        }
        assert_eq!(snap.len(), expected.len());
        for (k, v) in snap {
            assert_eq!(v, expected[&k.as_u64().unwrap()].clone().into_bytes());
        }
        // The current scan sees the final generation of every key.
        let current = w.scan_current(&KeyRange::full()).unwrap();
        assert_eq!(current.len(), 20);
        assert!(current
            .iter()
            .all(|(_, v)| String::from_utf8_lossy(v).contains("gen9")));
    }

    #[test]
    fn range_scans_clip_to_bounds() {
        let (w, _) = build();
        let range = KeyRange::bounded(Key::from_u64(5), Key::from_u64(12));
        let rows = w.scan_current(&range).unwrap();
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|(k, _)| range.contains(k)));
        assert_eq!(w.count_as_of(&range, Timestamp::MAX).unwrap(), 7);
        assert_eq!(w.count_as_of(&range, Timestamp::ZERO).unwrap(), 0);
    }

    #[test]
    fn version_histories_follow_backward_pointers() {
        let (w, log) = build();
        for key in 0..20u64 {
            let expected: Vec<_> = log.iter().filter(|(k, _, _)| *k == key).collect();
            let versions = w.versions(&Key::from_u64(key)).unwrap();
            assert_eq!(versions.len(), expected.len(), "key {key}");
            for (v, (_, ts, value)) in versions.iter().zip(expected.iter()) {
                assert_eq!(v.commit_time().unwrap(), *ts);
                assert_eq!(v.value.as_ref().unwrap(), &value.clone().into_bytes());
            }
        }
        assert!(w.versions(&Key::from_u64(999)).unwrap().is_empty());
    }

    #[test]
    fn deleted_keys_disappear_from_snapshots_after_their_tombstone() {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        for i in 0..10u64 {
            w.insert(i, format!("v{i}").into_bytes()).unwrap();
        }
        let before = w.now();
        w.delete(4u64).unwrap();
        assert_eq!(w.scan_current(&KeyRange::full()).unwrap().len(), 9);
        assert_eq!(w.snapshot_at(before.prev()).unwrap().len(), 10);
    }
}
