//! WOBT statistics: the same census the TSB-tree reports, so the two
//! structures can be compared on the quantities the paper's evaluation
//! names — total space, space holding current data, redundancy — plus the
//! WORM-specific sector utilization that motivates the TSB-tree (§1, §2.6).

use std::collections::HashSet;
use std::fmt;

use tsb_common::{Timestamp, TsbResult};

use crate::node::{ExtentId, WobtEntries, WobtNodeKind};
use crate::tree::Wobt;

/// A census of a Write-Once B-tree.
#[derive(Clone, Debug, PartialEq)]
pub struct WobtStats {
    /// Data nodes reachable from the root chain.
    pub data_nodes: usize,
    /// Index nodes reachable from the root chain.
    pub index_nodes: usize,
    /// Number of successive roots.
    pub roots: usize,
    /// Committed version copies across all data nodes.
    pub version_copies: usize,
    /// Distinct logical versions (unique `(key, commit time)` pairs).
    pub distinct_versions: usize,
    /// Redundant copies (`version_copies - distinct_versions`).
    pub redundant_copies: usize,
    /// Index entry copies across all index nodes.
    pub index_entry_copies: usize,
    /// Sectors allocated on the WORM device (including unwritten extent
    /// tails).
    pub sectors_allocated: u64,
    /// Sectors actually burned.
    pub sectors_written: u64,
    /// Device bytes occupied (allocated sectors × sector size) — the WOBT's
    /// total space; it has no magnetic component.
    pub device_bytes: u64,
    /// Bytes of real payload burned.
    pub payload_bytes: u64,
}

impl WobtStats {
    /// Redundancy ratio: redundant copies / distinct versions.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.distinct_versions == 0 {
            0.0
        } else {
            self.redundant_copies as f64 / self.distinct_versions as f64
        }
    }

    /// WORM space utilization: payload bytes / device bytes.
    pub fn utilization(&self) -> f64 {
        if self.device_bytes == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.device_bytes as f64
        }
    }
}

impl fmt::Display for WobtStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "nodes: {} data, {} index, {} roots",
            self.data_nodes, self.index_nodes, self.roots
        )?;
        writeln!(
            f,
            "versions: {} copies of {} distinct ({} redundant, ratio {:.3}); {} index entry copies",
            self.version_copies,
            self.distinct_versions,
            self.redundant_copies,
            self.redundancy_ratio(),
            self.index_entry_copies
        )?;
        write!(
            f,
            "space: {} sectors allocated, {} written, {} device bytes, {} payload bytes (utilization {:.3})",
            self.sectors_allocated,
            self.sectors_written,
            self.device_bytes,
            self.payload_bytes,
            self.utilization()
        )
    }
}

impl Wobt {
    /// Walks every node reachable from the current root (through index
    /// entries of every age and through data-node backward pointers) and
    /// returns the census.
    pub fn stats(&self) -> TsbResult<WobtStats> {
        let mut visited: HashSet<ExtentId> = HashSet::new();
        let mut stack: Vec<ExtentId> = vec![self.root];
        // Old roots are reachable from the current root's minimum-time entry,
        // but include them explicitly for robustness.
        stack.extend(self.root_history.iter().copied());

        let mut stats = WobtStats {
            data_nodes: 0,
            index_nodes: 0,
            roots: self.root_history.len(),
            version_copies: 0,
            distinct_versions: 0,
            redundant_copies: 0,
            index_entry_copies: 0,
            sectors_allocated: self.worm.sectors_allocated(),
            sectors_written: self.worm.sectors_written(),
            device_bytes: self.worm.device_bytes(),
            payload_bytes: self.worm.payload_bytes(),
        };
        let mut distinct: HashSet<(Vec<u8>, Timestamp)> = HashSet::new();

        while let Some(extent) = stack.pop() {
            if !visited.insert(extent) {
                continue;
            }
            let node = self.read_node(extent)?;
            if let Some(bp) = node.back_pointer {
                stack.push(bp);
            }
            match node.kind {
                WobtNodeKind::Data => {
                    stats.data_nodes += 1;
                    if let WobtEntries::Data(entries) = &node.entries {
                        for v in entries {
                            if let Some(t) = v.commit_time() {
                                stats.version_copies += 1;
                                distinct.insert((v.key.as_bytes().to_vec(), t));
                            }
                        }
                    }
                }
                WobtNodeKind::Index => {
                    stats.index_nodes += 1;
                    if let WobtEntries::Index(entries) = &node.entries {
                        stats.index_entry_copies += entries.len();
                        for e in entries {
                            stack.push(e.child);
                        }
                    }
                }
            }
        }
        stats.distinct_versions = distinct.len();
        stats.redundant_copies = stats.version_copies - stats.distinct_versions;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::WobtConfig;
    use tsb_common::Key;

    #[test]
    fn census_matches_the_inserted_history() {
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        for i in 0..150u64 {
            w.insert(i % 15, format!("value-{i}").into_bytes()).unwrap();
        }
        let stats = w.stats().unwrap();
        assert_eq!(stats.distinct_versions, 150, "no version may be lost");
        assert!(stats.version_copies >= stats.distinct_versions);
        assert!(stats.data_nodes >= 1);
        assert!(stats.sectors_written > 0);
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
        let text = stats.to_string();
        assert!(text.contains("redundant"));
        assert!(text.contains("utilization"));
    }

    #[test]
    fn update_heavy_workloads_create_redundant_copies() {
        // Repeated updates force splits that copy the current versions
        // forward; the copies are redundant storage (§2.6's observation).
        let mut w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        for round in 0..60u64 {
            for key in 0..4u64 {
                w.insert(key, format!("r{round}").into_bytes()).unwrap();
            }
        }
        let stats = w.stats().unwrap();
        assert_eq!(stats.distinct_versions, 240);
        assert!(
            stats.redundant_copies > 0,
            "WOBT splits must have duplicated current versions"
        );
        // Single-entry sector burns dominate: utilization is poor.
        assert!(stats.utilization() < 0.8);
        // Sanity: the data is still correct.
        assert_eq!(
            w.get_current(&Key::from_u64(0)).unwrap().unwrap(),
            b"r59".to_vec()
        );
    }

    #[test]
    fn empty_tree_stats() {
        let w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        let stats = w.stats().unwrap();
        assert_eq!(stats.distinct_versions, 0);
        assert_eq!(stats.redundancy_ratio(), 0.0);
        assert_eq!(stats.data_nodes, 1);
        assert_eq!(stats.roots, 1);
    }
}
