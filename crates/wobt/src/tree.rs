//! The WOBT handle: configuration, node I/O over the WORM store, creation,
//! and the root list.

use std::sync::Arc;

use tsb_common::{Key, LogicalClock, Timestamp, TsbError, TsbResult, Version};
use tsb_storage::{IoStats, WormStore};

use crate::node::{
    decode_sector, encode_data_sector, ExtentId, WobtEntries, WobtIndexEntry, WobtNode,
    WobtNodeKind,
};

/// Configuration of a Write-Once B-tree.
#[derive(Clone, Debug)]
pub struct WobtConfig {
    /// WORM sector size in bytes; must match the store's sector size.
    pub sector_size: usize,
    /// Number of sectors per node extent (data and index nodes alike).
    pub node_sectors: u64,
    /// Maximum key length in bytes.
    pub max_key_len: usize,
}

impl Default for WobtConfig {
    fn default() -> Self {
        WobtConfig {
            sector_size: 1024,
            node_sectors: 8,
            max_key_len: 512,
        }
    }
}

impl WobtConfig {
    /// A small configuration for tests: tiny sectors and extents so splits
    /// happen constantly.
    pub fn small() -> Self {
        WobtConfig {
            sector_size: 128,
            node_sectors: 4,
            max_key_len: 64,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> TsbResult<()> {
        if self.sector_size < 32 {
            return Err(TsbError::config(format!(
                "sector_size must be at least 32 bytes, got {}",
                self.sector_size
            )));
        }
        if self.node_sectors < 2 {
            return Err(TsbError::config(format!(
                "node_sectors must be at least 2, got {}",
                self.node_sectors
            )));
        }
        if self.max_key_len == 0 || self.max_key_len > self.sector_size / 2 {
            return Err(TsbError::config(format!(
                "max_key_len must be between 1 and sector_size/2 ({}), got {}",
                self.sector_size / 2,
                self.max_key_len
            )));
        }
        Ok(())
    }

    /// Bytes available to a node's consolidated content when a split creates
    /// it: half the extent, leaving the other half for future one-per-sector
    /// insertions.
    pub fn consolidation_budget(&self) -> usize {
        (self.node_sectors as usize).div_ceil(2) * self.sector_size
    }
}

/// Easton's Write-Once B-tree, stored entirely on the write-once device.
pub struct Wobt {
    pub(crate) cfg: WobtConfig,
    pub(crate) worm: Arc<WormStore>,
    pub(crate) clock: LogicalClock,
    pub(crate) root: ExtentId,
    pub(crate) root_history: Vec<ExtentId>,
}

impl std::fmt::Debug for Wobt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wobt")
            .field("root", &self.root)
            .field("roots", &self.root_history.len())
            .field("node_sectors", &self.cfg.node_sectors)
            .finish()
    }
}

impl Wobt {
    /// Creates a fresh WOBT with its own in-memory WORM store.
    pub fn new_in_memory(cfg: WobtConfig) -> TsbResult<Self> {
        let stats = Arc::new(IoStats::new());
        let worm = Arc::new(WormStore::in_memory(cfg.sector_size, stats));
        Self::create(worm, cfg)
    }

    /// Creates a fresh WOBT on the provided WORM store.
    pub fn create(worm: Arc<WormStore>, cfg: WobtConfig) -> TsbResult<Self> {
        cfg.validate()?;
        if worm.sector_size() != cfg.sector_size {
            return Err(TsbError::config(format!(
                "WORM store sector size {} does not match config sector size {}",
                worm.sector_size(),
                cfg.sector_size
            )));
        }
        // The initial root is an empty data node: burn its first sector so
        // the node exists on the device.
        let first = worm.allocate_extent(cfg.node_sectors)?;
        let root = ExtentId(first.0);
        worm.write_sector(root.first_sector(), &encode_data_sector(&[], None))?;
        Ok(Wobt {
            cfg,
            worm,
            clock: LogicalClock::new(),
            root,
            root_history: vec![root],
        })
    }

    /// The configuration.
    pub fn config(&self) -> &WobtConfig {
        &self.cfg
    }

    /// The WORM store backing the tree.
    pub fn worm(&self) -> &Arc<WormStore> {
        &self.worm
    }

    /// The shared I/O statistics.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.worm.stats()
    }

    /// The current logical time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The current root extent.
    pub fn root_extent(&self) -> ExtentId {
        self.root
    }

    /// The list of successive roots, oldest first (§2.4: "a list of
    /// successive addresses for the root nodes must also be kept").
    pub fn root_history(&self) -> &[ExtentId] {
        &self.root_history
    }

    // ----- node I/O -------------------------------------------------------

    /// Reads a node: the concatenation of its written sectors, in order.
    pub(crate) fn read_node(&self, extent: ExtentId) -> TsbResult<WobtNode> {
        self.worm.stats().record_historical_node_access();
        let mut kind: Option<WobtNodeKind> = None;
        let mut back_pointer = None;
        let mut data: Vec<Version> = Vec::new();
        let mut index: Vec<WobtIndexEntry> = Vec::new();
        let mut sectors_used = 0u64;
        for i in 0..self.cfg.node_sectors {
            let sector = extent.sector(i);
            if !self.worm.is_sector_written(sector) {
                break;
            }
            let decoded = decode_sector(&self.worm.read_sector(sector)?)?;
            match kind {
                None => kind = Some(decoded.kind),
                Some(k) if k != decoded.kind => {
                    return Err(TsbError::corruption(format!(
                        "extent {extent} mixes data and index sectors"
                    )))
                }
                Some(_) => {}
            }
            if i == 0 {
                back_pointer = decoded.back_pointer;
            }
            match decoded.entries {
                WobtEntries::Data(mut v) => data.append(&mut v),
                WobtEntries::Index(mut v) => index.append(&mut v),
            }
            sectors_used += 1;
        }
        let kind = kind.ok_or_else(|| {
            TsbError::corruption(format!("extent {extent} has no written sectors"))
        })?;
        let entries = match kind {
            WobtNodeKind::Data => WobtEntries::Data(data),
            WobtNodeKind::Index => WobtEntries::Index(index),
        };
        Ok(WobtNode {
            kind,
            entries,
            sectors_used,
            back_pointer,
        })
    }

    /// Allocates a new extent and burns the given pre-packed sector images
    /// into its first sectors. Fails if there are more images than sectors in
    /// an extent.
    pub(crate) fn write_new_node(&self, sector_images: &[Vec<u8>]) -> TsbResult<ExtentId> {
        if sector_images.len() as u64 > self.cfg.node_sectors {
            return Err(TsbError::internal(format!(
                "node needs {} sectors but extents have only {}",
                sector_images.len(),
                self.cfg.node_sectors
            )));
        }
        let first = self.worm.allocate_extent(self.cfg.node_sectors)?;
        let extent = ExtentId(first.0);
        for (i, image) in sector_images.iter().enumerate() {
            self.worm.write_sector(extent.sector(i as u64), image)?;
        }
        Ok(extent)
    }

    /// Burns one more sector of an existing node. The caller must have
    /// checked that the extent has a free sector.
    pub(crate) fn append_sector(&self, extent: ExtentId, used: u64, image: &[u8]) -> TsbResult<()> {
        if used >= self.cfg.node_sectors {
            return Err(TsbError::internal(format!(
                "extent {extent} is already full"
            )));
        }
        self.worm.write_sector(extent.sector(used), image)
    }

    // ----- search ---------------------------------------------------------

    /// The descent path for `key` as of `as_of`: `(extent, separator key)`
    /// pairs from the root to the leaf. The separator key is the key of the
    /// index entry followed to reach the node (the root's separator is the
    /// minimum key).
    pub(crate) fn descend_path(
        &self,
        key: &Key,
        as_of: Timestamp,
    ) -> TsbResult<Vec<(ExtentId, Key)>> {
        let mut path = vec![(self.root, Key::MIN)];
        loop {
            let (extent, _) = *path.last().expect("path starts non-empty");
            let node = self.read_node(extent)?;
            match node.kind {
                WobtNodeKind::Data => return Ok(path),
                WobtNodeKind::Index => {
                    let entries = node.index_entries()?;
                    let mut best: Option<&WobtIndexEntry> = None;
                    for e in entries {
                        if e.ts > as_of || e.key > *key {
                            continue;
                        }
                        match best {
                            None => best = Some(e),
                            Some(b) if e.key >= b.key => best = Some(e),
                            Some(_) => {}
                        }
                    }
                    let best = best.ok_or_else(|| {
                        TsbError::corruption(format!(
                            "WOBT index node {extent} has no entry routing key {key} as of {as_of}"
                        ))
                    })?;
                    path.push((best.child, best.key.clone()));
                }
            }
        }
    }

    /// The newest committed value of `key`, or `None` if absent or deleted.
    pub fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        self.get_as_of(key, Timestamp::MAX)
    }

    /// The value of `key` as of time `ts` (§2.5's rollback search).
    pub fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        let path = self.descend_path(key, ts)?;
        let (leaf, _) = *path.last().expect("non-empty path");
        let node = self.read_node(leaf)?;
        let entries = node.data_entries()?;
        let governing = entries
            .iter()
            .filter(|v| v.key == *key)
            .rfind(|v| v.commit_time().map(|t| t <= ts).unwrap_or(false));
        Ok(governing
            .filter(|v| !v.is_tombstone())
            .and_then(|v| v.value.clone()))
    }

    /// Number of nodes visited by an as-of lookup (for the experiments).
    pub fn lookup_node_accesses(&self, key: &Key, ts: Timestamp) -> TsbResult<usize> {
        Ok(self.descend_path(key, ts)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        WobtConfig::default().validate().unwrap();
        WobtConfig::small().validate().unwrap();
        let c = WobtConfig {
            sector_size: 4,
            ..WobtConfig::default()
        };
        assert!(c.validate().is_err());
        let c = WobtConfig {
            node_sectors: 1,
            ..WobtConfig::default()
        };
        assert!(c.validate().is_err());
        let c = WobtConfig {
            max_key_len: WobtConfig::default().sector_size,
            ..WobtConfig::default()
        };
        assert!(c.validate().is_err());
        assert_eq!(WobtConfig::small().consolidation_budget(), 2 * 128);
    }

    #[test]
    fn create_rejects_mismatched_sector_size() {
        let stats = Arc::new(IoStats::new());
        let worm = Arc::new(WormStore::in_memory(256, stats));
        let cfg = WobtConfig {
            sector_size: 128,
            ..WobtConfig::small()
        };
        assert!(Wobt::create(worm, cfg).is_err());
    }

    #[test]
    fn empty_tree_reads_nothing() {
        let w = Wobt::new_in_memory(WobtConfig::small()).unwrap();
        assert!(w.get_current(&Key::from_u64(1)).unwrap().is_none());
        assert!(w
            .get_as_of(&Key::from_u64(1), Timestamp(100))
            .unwrap()
            .is_none());
        assert_eq!(w.root_history().len(), 1);
        assert_eq!(
            w.lookup_node_accesses(&Key::from_u64(1), Timestamp::MAX)
                .unwrap(),
            1
        );
    }
}
