//! The `tsb-load` binary: drive a running `tsb-server` with the socket
//! load harness and print a one-line report.
//!
//! ```text
//! tsb-load --addr HOST:PORT [--conns N] [--ops N] [--depth N]
//!          [--keys N] [--value BYTES] [--seed N] [--shutdown]
//! ```
//!
//! `--depth 1` is the closed loop (default); higher depths pipeline.
//! `--shutdown` sends the `Shutdown` verb after the run — the CI smoke job
//! uses it to stop the server cleanly.

use tsb_workload::{drive_socket, SocketDriveSpec};

fn usage() -> ! {
    eprintln!(
        "usage: tsb-load --addr HOST:PORT [--conns N] [--ops N] [--depth N] [--keys N] \
         [--value BYTES] [--seed N] [--shutdown]"
    );
    std::process::exit(2);
}

fn num_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => usage(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr: Option<String> = None;
    let mut spec = SocketDriveSpec {
        connections: 4,
        ops_per_conn: 250,
        pipeline_depth: 1,
        ..SocketDriveSpec::default()
    };
    let mut shutdown = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(num_arg::<String>(&mut args)),
            "--conns" => spec.connections = num_arg(&mut args),
            "--ops" => spec.ops_per_conn = num_arg(&mut args),
            "--depth" => spec.pipeline_depth = num_arg(&mut args),
            "--keys" => spec.num_keys = num_arg(&mut args),
            "--value" => spec.value_size = num_arg(&mut args),
            "--seed" => spec.seed = num_arg(&mut args),
            "--shutdown" => shutdown = true,
            _ => usage(),
        }
    }
    let addr = match addr.as_deref().and_then(|a| a.parse().ok()) {
        Some(a) => a,
        None => usage(),
    };

    match drive_socket(addr, &spec) {
        Ok(report) => {
            println!(
                "tsb-load: {} ops in {:.3}s = {:.0} ops/s, p50 {:.0}us, p99 {:.0}us \
                 ({} conns, depth {})",
                report.committed_ops,
                report.elapsed.as_secs_f64(),
                report.ops_per_sec(),
                report.p50().as_secs_f64() * 1e6,
                report.p99().as_secs_f64() * 1e6,
                spec.connections,
                spec.pipeline_depth,
            );
        }
        Err(e) => {
            eprintln!("tsb-load: {e}");
            std::process::exit(1);
        }
    }

    if shutdown {
        let result = tsb_client::TsbClient::connect(addr).and_then(|mut c| c.shutdown_server());
        match result {
            Ok(()) => println!("tsb-load: server acknowledged shutdown"),
            Err(e) => {
                eprintln!("tsb-load: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
