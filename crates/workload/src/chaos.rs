//! [`ChaosProxy`]: a deterministic, fault-injecting TCP relay for
//! robustness tests.
//!
//! The proxy sits on either link of the replicated deployment —
//! client ↔ server or primary ↔ replica (point `--replica-of` at the
//! proxy) — and injects the network's unpleasantness on purpose:
//!
//! * **Delay** — random per-chunk forwarding stalls (reordering across
//!   connections, latency spikes);
//! * **Connection drops** — abrupt severing of an established connection
//!   after a random number of forwarded chunks (a crashed middlebox, an
//!   idle-reaped NAT entry);
//! * **Mid-frame truncation** — the connection dies with only a prefix of
//!   a chunk delivered, so the peer sees a torn frame (the classic
//!   partial-write crash);
//! * **Duplicated partial writes** — a prefix of a chunk is injected
//!   *twice*, desynchronizing the byte stream the way a broken retry at a
//!   lower layer would. The peer's frame decoder must detect garbage and
//!   fail the connection rather than misparse it.
//!
//! Every decision is drawn from a [`rand::rngs::StdRng`] seeded by
//! `(spec.seed, connection id, direction)`, so a failing run replays
//! exactly from its seed. The proxy never parses frames: it injects
//! faults at arbitrary byte boundaries, which is precisely what makes
//! them interesting.
//!
//! The two sides must *tolerate* this: no panics, no hangs (bounded
//! timeouts), no lost acknowledged-durable writes, and — on the
//! replication link — a replica that re-converges once the weather
//! clears. The chaos matrix in `crates/server/tests/chaos.rs` asserts all
//! four.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which fault a [`ChaosProxy`] injects. One proxy injects one fault
/// class (compose proxies to stack them); [`Fault::None`] relays
/// faithfully, as the matrix's control arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Faithful relay (control).
    None,
    /// Each forwarded chunk stalls with probability 1/8, for 1–25 ms.
    Delay,
    /// Each connection is severed abruptly after 4–64 forwarded chunks.
    DropConn,
    /// Each connection dies after 4–64 chunks, delivering only a random
    /// non-empty prefix of its final chunk (a torn frame).
    Truncate,
    /// With probability 1/16 per chunk, a random prefix of the chunk is
    /// written, then the whole chunk again — duplicated bytes the peer
    /// must reject as garbage framing.
    DuplicatePartial,
}

impl Fault {
    /// All fault classes, for matrix-style tests.
    pub const ALL: [Fault; 5] = [
        Fault::None,
        Fault::Delay,
        Fault::DropConn,
        Fault::Truncate,
        Fault::DuplicatePartial,
    ];

    /// A short stable name for test labels.
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Delay => "delay",
            Fault::DropConn => "drop-conn",
            Fault::Truncate => "truncate",
            Fault::DuplicatePartial => "duplicate-partial",
        }
    }
}

/// Configuration for a [`ChaosProxy`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosSpec {
    /// Root seed; every per-connection schedule derives from it.
    pub seed: u64,
    /// The fault class to inject.
    pub fault: Fault,
}

/// Counters a test can assert on to prove the chaos actually happened.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted and relayed.
    pub conns: AtomicU64,
    /// Connections severed by fault injection (drop or truncate).
    pub severed: AtomicU64,
    /// Chunks delayed.
    pub delayed: AtomicU64,
    /// Duplicate partial writes injected.
    pub duplicated: AtomicU64,
    /// Bytes faithfully forwarded (both directions).
    pub forwarded_bytes: AtomicU64,
}

/// A fault-injecting TCP relay. Listens on an ephemeral local port and
/// forwards every accepted connection to `target`, applying the
/// configured fault along the way. Stop it with [`ChaosProxy::stop`] (or
/// drop it).
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy in front of `target`.
    pub fn start(target: SocketAddr, spec: ChaosSpec) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        // Poll for stop without busy-waiting on accept.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let accept_thread = std::thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || accept_loop(listener, target, spec, &accept_stop, &accept_stats))?;
        Ok(ChaosProxy {
            addr,
            stop,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address (point clients or `--replica-of`
    /// here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault counters so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting and severs the relay threads. In-flight
    /// connections are abandoned (their sockets close as the threads
    /// notice the flag).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    target: SocketAddr,
    spec: ChaosSpec,
    stop: &Arc<AtomicBool>,
    stats: &Arc<ChaosStats>,
) {
    let mut conn_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let inbound = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => break,
        };
        let outbound = match TcpStream::connect_timeout(&target, Duration::from_secs(5)) {
            Ok(s) => s,
            Err(_) => {
                // Target down (e.g. the primary was just killed): refuse
                // by closing, exactly like a dead host's RST.
                let _ = inbound.shutdown(Shutdown::Both);
                continue;
            }
        };
        let _ = inbound.set_nodelay(true);
        let _ = outbound.set_nodelay(true);
        stats.conns.fetch_add(1, Ordering::Relaxed);
        conn_id += 1;
        for (dir, from, to) in [
            (0u64, inbound.try_clone(), outbound.try_clone()),
            (1u64, outbound.try_clone(), inbound.try_clone()),
        ] {
            let (from, to) = match (from, to) {
                (Ok(f), Ok(t)) => (f, t),
                _ => continue,
            };
            let stop = Arc::clone(stop);
            let stats = Arc::clone(stats);
            // Decorrelate the two directions and every connection while
            // staying a pure function of the spec seed.
            let seed = spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(conn_id * 2 + dir);
            let _ = std::thread::Builder::new()
                .name(format!("chaos-relay-{conn_id}-{dir}"))
                .spawn(move || relay(from, to, spec.fault, seed, &stop, &stats));
        }
    }
}

/// One direction of one connection: read chunks, inject the fault,
/// forward. Exits on EOF, error, severing, or proxy stop.
fn relay(
    mut from: TcpStream,
    mut to: TcpStream,
    fault: Fault,
    seed: u64,
    stop: &Arc<AtomicBool>,
    stats: &Arc<ChaosStats>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    // How many chunks this connection survives (for the severing faults).
    let sever_after = match fault {
        Fault::DropConn | Fault::Truncate => Some(rng.gen_range(4u64..=64)),
        _ => None,
    };
    let _ = from.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 4096];
    let mut chunks = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        chunks += 1;
        let chunk = &buf[..n];
        match fault {
            Fault::None => {}
            Fault::Delay => {
                if rng.gen_bool(1.0 / 8.0) {
                    stats.delayed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(rng.gen_range(1u64..=25)));
                }
            }
            Fault::DropConn => {
                if chunks >= sever_after.unwrap() {
                    stats.severed.fetch_add(1, Ordering::Relaxed);
                    let _ = from.shutdown(Shutdown::Both);
                    let _ = to.shutdown(Shutdown::Both);
                    return;
                }
            }
            Fault::Truncate => {
                if chunks >= sever_after.unwrap() {
                    // Deliver a non-empty prefix, then die mid-frame.
                    let cut = rng.gen_range(1usize..=n);
                    let _ = to.write_all(&chunk[..cut]);
                    stats.severed.fetch_add(1, Ordering::Relaxed);
                    let _ = from.shutdown(Shutdown::Both);
                    let _ = to.shutdown(Shutdown::Both);
                    return;
                }
            }
            Fault::DuplicatePartial => {
                if rng.gen_bool(1.0 / 16.0) {
                    let cut = rng.gen_range(1usize..=n);
                    if to.write_all(&chunk[..cut]).is_err() {
                        break;
                    }
                    stats.duplicated.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        stats.forwarded_bytes.fetch_add(n as u64, Ordering::Relaxed);
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
