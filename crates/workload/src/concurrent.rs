//! Deterministic concurrent-scenario driver.
//!
//! A concurrent stress run has two halves: one scripted **writer stream**
//! (reusing [`WorkloadSpec`](crate::WorkloadSpec) / [`generate_ops`]) and N
//! scripted **reader plans**. Reproducibility across runs and across
//! engines requires that *everything random is decided up front from
//! seeds*; the only run-time degree of freedom is how far the writer has
//! progressed when a reader query executes. Reader queries therefore pin
//! their read time as a **fraction of the installed history**: the harness
//! maps `ts_fraction` to a concrete timestamp `⌈fraction × fence⌉` at
//! execution time, where `fence` is the engine's last fully installed
//! commit time. Query answers are then checkable against a single-threaded
//! oracle replayed to that same timestamp, no matter how the threads
//! interleaved.
//!
//! The driver is engine-agnostic — this crate knows nothing about the
//! TSB-tree. The integration tests run the plans against `ConcurrentTsb`
//! and the [`Oracle`](crate::Oracle); the bench harness reuses the same
//! plans for its readers-vs-writer scaling experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tsb_common::{Key, KeyRange};

use crate::generator::{generate_ops, Op, WorkloadSpec};

/// The shape of one scripted reader query. Concrete read timestamps are
/// chosen at execution time from [`ReaderQuery::ts_fraction`].
#[derive(Clone, Debug, PartialEq)]
pub enum ReaderQueryKind {
    /// Point lookup of a key as of the pinned time.
    PointAsOf(Key),
    /// Range scan as of the pinned time.
    RangeAsOf(KeyRange),
    /// Version history of a key over `[0, pinned time]`.
    HistoryTo(Key),
    /// Count of keys alive in the range as of the pinned time.
    CountAsOf(KeyRange),
}

/// One scripted reader query: a shape plus the fraction of the installed
/// history at which to pin the read.
#[derive(Clone, Debug, PartialEq)]
pub struct ReaderQuery {
    /// Where in the installed history to read, in `[0, 1]`: `0.0` is the
    /// beginning of time, `1.0` the newest fully installed write at the
    /// moment the query executes.
    pub ts_fraction: f64,
    /// The query shape.
    pub kind: ReaderQueryKind,
}

/// A deterministic concurrent scenario: one writer stream and N reader
/// plans, all derived from seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct ConcurrentSpec {
    /// The writer's scripted workload.
    pub write: WorkloadSpec,
    /// Number of concurrent reader threads.
    pub readers: usize,
    /// Queries per reader plan.
    pub queries_per_reader: usize,
    /// Base seed for the reader plans; reader `i` uses `reader_seed + i`.
    pub reader_seed: u64,
}

impl Default for ConcurrentSpec {
    fn default() -> Self {
        ConcurrentSpec {
            write: WorkloadSpec::default(),
            readers: 4,
            queries_per_reader: 200,
            reader_seed: 0xC0FFEE,
        }
    }
}

impl ConcurrentSpec {
    /// The writer's operation stream (deterministic for the spec).
    pub fn writer_ops(&self) -> Vec<Op> {
        generate_ops(&self.write)
    }

    /// The scripted plan for reader `reader_idx` (deterministic for the
    /// spec and index). Keys and ranges are drawn from the writer's key
    /// space so that queries hit meaningful data.
    pub fn reader_plan(&self, reader_idx: usize) -> Vec<ReaderQuery> {
        let mut rng = StdRng::seed_from_u64(self.reader_seed.wrapping_add(reader_idx as u64));
        let num_keys = self.write.num_keys.max(1);
        let mut plan = Vec::with_capacity(self.queries_per_reader);
        for _ in 0..self.queries_per_reader {
            // Bias towards recent history (the paper: fast access to recent
            // records matters most) while still exercising deep history.
            let ts_fraction = 1.0 - rng.gen_range(0.0..1.0f64).powi(2);
            let key = Key::from_u64(rng.gen_range(0..num_keys));
            let kind = match rng.gen_range(0..10u32) {
                0..=5 => ReaderQueryKind::PointAsOf(key),
                6..=7 => {
                    let lo = rng.gen_range(0..num_keys);
                    let span = rng.gen_range(1..=(num_keys / 4).max(1));
                    ReaderQueryKind::RangeAsOf(key_range(lo, lo.saturating_add(span)))
                }
                8 => ReaderQueryKind::HistoryTo(key),
                _ => {
                    let lo = rng.gen_range(0..num_keys);
                    let span = rng.gen_range(1..=(num_keys / 2).max(1));
                    ReaderQueryKind::CountAsOf(key_range(lo, lo.saturating_add(span)))
                }
            };
            plan.push(ReaderQuery { ts_fraction, kind });
        }
        plan
    }

    /// All reader plans, indexed by reader.
    pub fn reader_plans(&self) -> Vec<Vec<ReaderQuery>> {
        (0..self.readers).map(|i| self.reader_plan(i)).collect()
    }
}

/// Maps a `ts_fraction` to a concrete timestamp value given the currently
/// installed history `[1, fence]`. Returns 0 when nothing is installed yet.
pub fn pin_fraction(ts_fraction: f64, fence: u64) -> u64 {
    ((ts_fraction.clamp(0.0, 1.0) * fence as f64).ceil() as u64).min(fence)
}

fn key_range(lo: u64, hi: u64) -> KeyRange {
    KeyRange::bounded(Key::from_u64(lo), Key::from_u64(hi.max(lo + 1)))
}

/// A small scripted mixed workload suitable for CI stress runs: updates
/// dominate (forcing time splits and WORM migration under the reader's
/// feet), with a trickle of deletes.
pub fn stress_spec(ops: usize, keys: u64, seed: u64) -> ConcurrentSpec {
    ConcurrentSpec {
        write: WorkloadSpec {
            num_ops: ops,
            num_keys: keys,
            update_fraction: 0.85,
            delete_fraction: 0.03,
            value_size: (24, 48),
            distribution: crate::distributions::KeyDistribution::Zipfian { theta: 0.7 },
            seed,
        },
        readers: 4,
        queries_per_reader: ops / 4,
        reader_seed: seed ^ 0x5EED_0EAD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed_and_reader() {
        let spec = ConcurrentSpec::default();
        assert_eq!(spec.reader_plan(0), spec.reader_plan(0));
        assert_ne!(spec.reader_plan(0), spec.reader_plan(1));
        assert_eq!(spec.writer_ops(), spec.writer_ops());
        let other = ConcurrentSpec {
            reader_seed: 1,
            ..spec.clone()
        };
        assert_ne!(spec.reader_plan(0), other.reader_plan(0));
        assert_eq!(spec.reader_plans().len(), spec.readers);
    }

    #[test]
    fn fractions_pin_inside_the_installed_history() {
        for q in ConcurrentSpec::default().reader_plan(3) {
            assert!((0.0..=1.0).contains(&q.ts_fraction));
            let pinned = pin_fraction(q.ts_fraction, 100);
            assert!(pinned <= 100);
        }
        assert_eq!(pin_fraction(0.5, 0), 0, "empty history pins to zero");
        assert_eq!(pin_fraction(1.0, 42), 42);
    }

    #[test]
    fn stress_spec_is_update_heavy() {
        let spec = stress_spec(1000, 64, 7);
        let ops = spec.writer_ops();
        assert_eq!(ops.len(), 1000);
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, Op::Delete { .. }))
            .count();
        assert!(deletes > 0, "stress mix must include deletes");
        assert_eq!(spec.readers, 4);
    }
}
