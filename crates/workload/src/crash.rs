//! Crash scenarios for the durability subsystem.
//!
//! A crash scenario is an ordinary deterministic [`WorkloadSpec`] stream
//! plus a *crash trigger*: either "the device dies after N write
//! operations" or "the device dies the k-th time execution reaches a
//! specific [`CrashPoint`]" (a named stage in the engine's durable write
//! path — WAL append, page write-back, checkpoint record, ...). The test
//! driver arms a [`tsb_storage::FaultInjector`] from the trigger, replays
//! the stream into a durable tree until the injected crash kills it, then
//! reopens from the surviving files and demands the recovered tree equal
//! the oracle's replay of the durable prefix.
//!
//! [`crash_matrix`] enumerates the standard adversarial matrix the
//! recovery-stress CI job runs: every crash point crossed with several
//! write budgets, for a given seed.

use tsb_storage::{CrashPoint, FaultInjector, ALL_CRASH_POINTS};

use crate::generator::WorkloadSpec;

/// When the injected crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashTrigger {
    /// The device stack dies after this many successful write operations
    /// (of any kind) — the "FailingStore kills writes after N ops" model.
    AfterWrites(u64),
    /// The device stack dies the `skip + 1`-th time execution reaches
    /// `point`.
    AtPoint {
        /// The instrumented stage to die at.
        point: CrashPoint,
        /// How many occurrences to let through first.
        skip: u64,
    },
}

impl CrashTrigger {
    /// Arms `injector` according to this trigger.
    pub fn arm(&self, injector: &FaultInjector) {
        match self {
            CrashTrigger::AfterWrites(n) => injector.fail_after_writes(*n),
            CrashTrigger::AtPoint { point, skip } => injector.crash_at(*point, *skip),
        }
    }
}

/// One crash scenario: a deterministic op stream and the point at which
/// the devices die under it.
#[derive(Clone, Debug)]
pub struct CrashSpec {
    /// The operation stream to replay until the crash.
    pub workload: WorkloadSpec,
    /// When the injected crash fires.
    pub trigger: CrashTrigger,
}

impl CrashSpec {
    /// A scenario with the default durability workload (update-heavy so
    /// time splits migrate history to the WORM store before the crash).
    pub fn new(seed: u64, trigger: CrashTrigger) -> Self {
        CrashSpec {
            workload: base_workload(seed),
            trigger,
        }
    }
}

/// The op stream shared by the matrix: update-heavy with deletes, small
/// values, enough ops to split and migrate many times on small pages.
fn base_workload(seed: u64) -> WorkloadSpec {
    let mut spec = WorkloadSpec::default()
        .with_ops(400)
        .with_keys(40)
        .with_update_ratio(4.0)
        .with_value_size(24)
        .with_seed(seed);
    spec.delete_fraction = 0.05;
    spec
}

/// The standard fault-injection matrix for one seed: every instrumented
/// crash point at several depths into the workload, plus write-budget
/// crashes at several depths. `scale` multiplies the write budgets (the
/// scheduled long-stress CI job passes a larger scale).
pub fn crash_matrix(seed: u64, scale: u64) -> Vec<CrashSpec> {
    let mut specs = Vec::new();
    for point in ALL_CRASH_POINTS {
        for skip in [0u64, 7, 40] {
            specs.push(CrashSpec::new(
                seed,
                CrashTrigger::AtPoint {
                    point: *point,
                    skip: skip * scale.max(1),
                },
            ));
        }
    }
    for writes in [1u64, 25, 120, 600] {
        specs.push(CrashSpec::new(
            seed,
            CrashTrigger::AfterWrites(writes * scale.max(1)),
        ));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ops;

    #[test]
    fn matrix_covers_every_crash_point() {
        let specs = crash_matrix(1, 1);
        for point in ALL_CRASH_POINTS {
            assert!(
                specs.iter().any(
                    |s| matches!(s.trigger, CrashTrigger::AtPoint { point: p, .. } if p == *point)
                ),
                "matrix misses {point:?}"
            );
        }
        assert!(specs
            .iter()
            .any(|s| matches!(s.trigger, CrashTrigger::AfterWrites(_))));
        // The workload is deterministic per seed.
        assert_eq!(
            generate_ops(&specs[0].workload),
            generate_ops(&crash_matrix(1, 1)[0].workload)
        );
        assert_ne!(
            generate_ops(&specs[0].workload),
            generate_ops(&crash_matrix(2, 1)[0].workload)
        );
    }

    #[test]
    fn triggers_arm_the_injector() {
        let injector = FaultInjector::new();
        CrashTrigger::AfterWrites(2).arm(&injector);
        injector.check(CrashPoint::WalAppend).unwrap();
        injector.check(CrashPoint::WalAppend).unwrap();
        assert!(injector.check(CrashPoint::WalAppend).is_err());

        let injector = FaultInjector::new();
        CrashTrigger::AtPoint {
            point: CrashPoint::WormAppend,
            skip: 0,
        }
        .arm(&injector);
        assert!(injector.check(CrashPoint::WormAppend).is_err());
    }
}
