//! Key-choice distributions for workload generation.

use rand::Rng;

/// How keys are chosen from a key space of `n` items.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum KeyDistribution {
    /// Every key equally likely.
    #[default]
    Uniform,
    /// Zipfian with the given skew parameter `theta` (0 < theta < 1 typical;
    /// larger = more skew towards low-numbered keys).
    Zipfian {
        /// Skew parameter.
        theta: f64,
    },
    /// Keys are produced in increasing order (append-style insertion).
    Sequential,
    /// A fraction of the key space is "hot" and receives most of the
    /// accesses.
    Hotspot {
        /// Fraction of the key space that is hot (e.g. 0.1).
        hot_fraction: f64,
        /// Probability that an access targets the hot set (e.g. 0.9).
        hot_probability: f64,
    },
}

/// A sampler over `0..n` following a [`KeyDistribution`].
#[derive(Clone, Debug)]
pub struct KeySampler {
    distribution: KeyDistribution,
    n: u64,
    /// Zipfian normalization constant (sum of 1/i^theta).
    zeta_n: f64,
    /// Sequential cursor.
    next_sequential: u64,
}

impl KeySampler {
    /// Creates a sampler over the key indices `0..n`.
    pub fn new(distribution: KeyDistribution, n: u64) -> Self {
        let n = n.max(1);
        let zeta_n = match distribution {
            KeyDistribution::Zipfian { theta } => {
                (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
            }
            _ => 0.0,
        };
        KeySampler {
            distribution,
            n,
            zeta_n,
            next_sequential: 0,
        }
    }

    /// The size of the key space.
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// Samples a key index in `0..n`.
    pub fn sample(&mut self, rng: &mut impl Rng) -> u64 {
        match self.distribution {
            KeyDistribution::Uniform => rng.gen_range(0..self.n),
            KeyDistribution::Sequential => {
                let k = self.next_sequential;
                self.next_sequential = (self.next_sequential + 1) % self.n;
                k
            }
            KeyDistribution::Zipfian { theta } => {
                // Inverse-CDF sampling over the precomputed zeta sum.
                let u: f64 = rng.gen_range(0.0..1.0);
                let target = u * self.zeta_n;
                let mut acc = 0.0;
                for i in 1..=self.n {
                    acc += 1.0 / (i as f64).powf(theta);
                    if acc >= target {
                        return i - 1;
                    }
                }
                self.n - 1
            }
            KeyDistribution::Hotspot {
                hot_fraction,
                hot_probability,
            } => {
                let hot_keys = ((self.n as f64) * hot_fraction).ceil().max(1.0) as u64;
                let hot_keys = hot_keys.min(self.n);
                if rng.gen_bool(hot_probability.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot_keys)
                } else if hot_keys < self.n {
                    rng.gen_range(hot_keys..self.n)
                } else {
                    rng.gen_range(0..self.n)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(dist: KeyDistribution, n: u64, samples: usize) -> Vec<u64> {
        let mut sampler = KeySampler::new(dist, n);
        let mut rng = StdRng::seed_from_u64(42);
        let mut hist = vec![0u64; n as usize];
        for _ in 0..samples {
            hist[sampler.sample(&mut rng) as usize] += 1;
        }
        hist
    }

    #[test]
    fn uniform_spreads_evenly() {
        let hist = histogram(KeyDistribution::Uniform, 10, 10_000);
        assert!(hist.iter().all(|&c| c > 500 && c < 1500), "{hist:?}");
    }

    #[test]
    fn zipfian_is_skewed_towards_low_keys() {
        let hist = histogram(KeyDistribution::Zipfian { theta: 0.99 }, 100, 20_000);
        assert!(hist[0] > hist[50] * 5, "{} vs {}", hist[0], hist[50]);
        // Every key can still be drawn (no hard truncation).
        assert!(hist.iter().filter(|&&c| c > 0).count() > 50);
    }

    #[test]
    fn sequential_cycles_in_order() {
        let mut sampler = KeySampler::new(KeyDistribution::Sequential, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let drawn: Vec<u64> = (0..12).map(|_| sampler.sample(&mut rng)).collect();
        assert_eq!(drawn, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let hist = histogram(
            KeyDistribution::Hotspot {
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
            100,
            20_000,
        );
        let hot: u64 = hist[..10].iter().sum();
        let cold: u64 = hist[10..].iter().sum();
        assert!(hot > cold * 5, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn degenerate_key_spaces_are_safe() {
        let mut sampler = KeySampler::new(KeyDistribution::Uniform, 0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.key_space(), 1);
        let mut sampler = KeySampler::new(
            KeyDistribution::Hotspot {
                hot_fraction: 1.0,
                hot_probability: 1.0,
            },
            3,
        );
        for _ in 0..10 {
            assert!(sampler.sample(&mut rng) < 3);
        }
    }
}
