//! Closed-loop multi-threaded durable write driver.
//!
//! The pipelined group commit only pays off when *several* client threads
//! have commits in flight at once: each drain of the group-commit thread
//! then acknowledges every commit appended while the previous fsync was on
//! the device, so fsyncs/op falls as thread count rises. This module is the
//! measurement harness for that effect — a **closed loop** of `N` writer
//! threads, each issuing its next durable insert only after the previous
//! one was acknowledged (i.e. after the engine's per-policy durability wait
//! returned). Closed-loop clients are the honest model for commit latency:
//! an open loop would happily enqueue thousands of unacknowledged commits
//! and make even a serial fsync path look concurrent.
//!
//! [`drive_durable`] runs one such loop against a [`ConcurrentTsb`] and
//! reports committed throughput together with the WAL's sync counters, so a
//! caller can derive fsyncs/op and commits/fsync for any
//! `threads × fsync-policy` cell (the E12c experiment in `tsb-bench`).
//!
//! Everything random is decided up front from the spec's seed: thread `i`
//! writes the deterministic key/value stream `seed + i` produces, so two
//! runs of the same spec commit identical data — only the interleaving
//! (and therefore the group-commit batching) differs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tsb_common::TsbResult;
use tsb_core::{ConcurrentTsb, EngineHandle, ShardedTsb};
use tsb_storage::IoSnapshot;

/// Parameters of one closed-loop durable write run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurableDriveSpec {
    /// Number of concurrent closed-loop writer threads.
    pub threads: usize,
    /// Durable inserts each thread issues (total ops = `threads × this`).
    pub ops_per_thread: usize,
    /// Size of the shared key space (`0..num_keys` mapped to u64 keys).
    pub num_keys: u64,
    /// Payload size in bytes of every insert.
    pub value_size: usize,
    /// Base seed; thread `i` draws its stream from `seed + i`.
    pub seed: u64,
}

impl Default for DurableDriveSpec {
    fn default() -> Self {
        DurableDriveSpec {
            threads: 4,
            ops_per_thread: 250,
            num_keys: 512,
            value_size: 48,
            seed: 0x0D17_AB1E,
        }
    }
}

/// What one [`drive_durable`] run measured.
#[derive(Clone, Debug)]
pub struct DurableDriveReport {
    /// Total acknowledged (durably committed) operations.
    pub committed_ops: u64,
    /// Wall-clock time from first spawn to last join.
    pub elapsed: Duration,
    /// I/O counter delta over the run (WAL syncs, commits, batches, waits).
    pub io: IoSnapshot,
}

impl DurableDriveReport {
    /// Acknowledged commits per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.committed_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Device fsyncs issued per acknowledged commit.
    pub fn fsyncs_per_op(&self) -> f64 {
        self.io.wal_syncs as f64 / (self.committed_ops as f64).max(1.0)
    }

    /// Mean time a committer spent parked on the durable-LSN watermark,
    /// per acknowledged commit (zero under `Os`, which never parks).
    pub fn parked_wait_per_op(&self) -> Duration {
        let nanos = self.io.group_commit_wait_nanos / self.committed_ops.max(1);
        Duration::from_nanos(nanos)
    }

    /// Mean time a writer spent blocked acquiring an engine writer lock,
    /// per acknowledged commit — the E14 "how serialized are the writers"
    /// number. Sharding drops it by giving each shard its own lock.
    pub fn lock_wait_per_op(&self) -> Duration {
        let nanos = self.io.writer_lock_wait_nanos / self.committed_ops.max(1);
        Duration::from_nanos(nanos)
    }
}

/// Runs the closed-loop driver against any [`EngineHandle`]:
/// `spec.threads` writer threads, each committing `spec.ops_per_thread`
/// durable inserts back-to-back, every insert acknowledged (per the
/// engine's `FsyncPolicy`) before the next is issued. Returns throughput
/// plus the I/O counter delta.
///
/// The engine should be durable for the numbers to mean anything; the
/// driver itself works on any engine.
pub fn drive_engine(
    db: &dyn EngineHandle,
    spec: &DurableDriveSpec,
) -> TsbResult<DurableDriveReport> {
    let before = db.io_snapshot();
    let start = Instant::now();
    let committed = std::thread::scope(|s| -> TsbResult<u64> {
        let handles: Vec<_> = (0..spec.threads)
            .map(|i| {
                let spec = spec.clone();
                s.spawn(move || writer_loop(db, &spec, i as u64))
            })
            .collect();
        let mut committed = 0u64;
        for h in handles {
            committed += h.join().expect("writer thread panicked")?;
        }
        Ok(committed)
    })?;
    let elapsed = start.elapsed();
    let io = db.io_snapshot().delta_since(&before);
    Ok(DurableDriveReport {
        committed_ops: committed,
        elapsed,
        io,
    })
}

/// [`drive_engine`] on a [`ConcurrentTsb`] (kept for callers that hold the
/// concrete type).
pub fn drive_durable(db: &ConcurrentTsb, spec: &DurableDriveSpec) -> TsbResult<DurableDriveReport> {
    drive_engine(db, spec)
}

/// [`drive_engine`] on an `N`-shard engine. The report's I/O delta is the
/// merged sum over every shard, so fsyncs/op and writer-lock wait/op are
/// directly comparable across shard counts (the E14 experiment in
/// `tsb-bench`).
pub fn drive_sharded(db: &ShardedTsb, spec: &DurableDriveSpec) -> TsbResult<DurableDriveReport> {
    drive_engine(db, spec)
}

/// One closed-loop writer: commits its deterministic stream one op at a
/// time, each acknowledged (deferred commit + durable wait) before the
/// next is issued.
fn writer_loop(db: &dyn EngineHandle, spec: &DurableDriveSpec, thread_idx: u64) -> TsbResult<u64> {
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(thread_idx));
    let mut committed = 0u64;
    for _ in 0..spec.ops_per_thread {
        let (key, value) = next_op(&mut rng, spec);
        let (_ts, pos) = db.insert_deferred(key, value)?;
        if let Some(pos) = pos {
            db.wait_durable(pos)?;
        }
        committed += 1;
    }
    Ok(committed)
}

fn next_op(rng: &mut StdRng, spec: &DurableDriveSpec) -> (tsb_common::Key, Vec<u8>) {
    let key = rng.gen_range(0..spec.num_keys.max(1));
    let mut value = vec![0u8; spec.value_size];
    for byte in value.iter_mut() {
        *byte = rng.gen_range(0..=u8::MAX as u32) as u8;
    }
    (tsb_common::Key::from_u64(key), value)
}

/// Convenience: the Arc-wrapped stats handle the driver reads is shared
/// with the engine, so callers holding their own baseline snapshots can
/// account for concurrent background work (checkpoints) separately.
pub fn io_stats_of(db: &ConcurrentTsb) -> Arc<tsb_storage::IoStats> {
    db.io_stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{FsyncPolicy, TsbConfig};

    fn durable_engine(dir: &std::path::Path, policy: FsyncPolicy) -> ConcurrentTsb {
        let cfg = TsbConfig {
            fsync_policy: policy,
            ..TsbConfig::small_pages()
        };
        tsb_core::TsbOptions::durable(dir)
            .config(cfg)
            .open_concurrent()
            .unwrap()
    }

    #[test]
    fn closed_loop_commits_every_op_and_counts_syncs() {
        let dir = tempdir();
        let db = durable_engine(dir.path(), FsyncPolicy::Always);
        let spec = DurableDriveSpec {
            threads: 4,
            ops_per_thread: 25,
            ..DurableDriveSpec::default()
        };
        let report = drive_durable(&db, &spec).unwrap();
        assert_eq!(report.committed_ops, 100);
        assert!(report.io.wal_commits >= 100);
        assert!(report.io.wal_syncs > 0, "Always must sync");
        // Pipelining can only merge syncs, never multiply them: at most
        // one fsync per acknowledged commit.
        assert!(report.io.wal_syncs <= report.io.wal_commits);
        assert!(report.ops_per_sec() > 0.0);
        db.verify().unwrap();
    }

    #[test]
    fn os_policy_never_parks() {
        let dir = tempdir();
        let db = durable_engine(dir.path(), FsyncPolicy::Os);
        let report = drive_durable(&db, &DurableDriveSpec::default()).unwrap();
        assert_eq!(report.committed_ops, 1000);
        assert_eq!(
            report.io.group_commit_waits, 0,
            "Os never waits on the watermark"
        );
        assert_eq!(report.parked_wait_per_op(), Duration::ZERO);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let spec = DurableDriveSpec::default();
        let dir_a = tempdir();
        let dir_b = tempdir();
        let a = durable_engine(dir_a.path(), FsyncPolicy::Os);
        let b = durable_engine(dir_b.path(), FsyncPolicy::Os);
        drive_durable(&a, &spec).unwrap();
        drive_durable(&b, &spec).unwrap();
        let dump_a = a.snapshot_at(a.last_installed()).unwrap();
        let dump_b = b.snapshot_at(b.last_installed()).unwrap();
        // Interleavings differ, but the committed key set is seed-determined.
        let keys_a: Vec<_> = dump_a.iter().map(|(k, _)| k.clone()).collect();
        let keys_b: Vec<_> = dump_b.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys_a, keys_b);
    }

    // Minimal scoped tempdir so the tests need no external crate.
    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    fn tempdir() -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "tsb-durable-driver-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}
