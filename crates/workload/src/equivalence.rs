//! Engine-generic oracle equivalence, expressed over
//! [`EngineHandle`] so one replay/check pair covers every engine flavour —
//! `ConcurrentTsb`, `ShardedTsb` at any shard count, and a synced
//! `ReplicaEngine` all answer through the same trait.
//!
//! [`replay_engine`] drives a scripted [`Op`] stream through the trait's
//! deferred-durability write verbs and records each acknowledged commit in
//! an [`Oracle`]; [`assert_engine_matches_oracle`] then demands identical
//! answers for current reads, as-of reads at every recorded commit time,
//! and per-key version histories. Together they are the operational
//! meaning of "no version is ever lost and every snapshot is consistent",
//! checked through the exact API servers and drivers use.

use std::collections::HashMap;

use tsb_common::{KeyRange, TimeRange, Timestamp, TsbResult};
use tsb_core::{EngineHandle, ShardLsn};

use crate::generator::Op;
use crate::oracle::Oracle;

/// Replays `ops` through `db`'s deferred write verbs, waiting once per
/// shard at the end for the durable watermark to cover everything, and
/// returns the oracle of acknowledged commits.
pub fn replay_engine(db: &dyn EngineHandle, ops: &[Op]) -> TsbResult<Oracle> {
    let mut oracle = Oracle::new();
    // Newest durability position seen per shard; one wait each at the end
    // acknowledges the whole stream (commit order is per-shard monotone).
    let mut tails: HashMap<usize, ShardLsn> = HashMap::new();
    for op in ops {
        let (ts, pos) = match op {
            Op::Put { key, value } => {
                let (ts, pos) = db.insert_deferred(key.clone(), value.clone())?;
                oracle.apply_put(key.clone(), ts, Some(value.clone()));
                (ts, pos)
            }
            Op::Delete { key } => {
                let (ts, pos) = db.delete_deferred(key.clone())?;
                oracle.apply_put(key.clone(), ts, None);
                (ts, pos)
            }
        };
        let _ = ts;
        if let Some(pos) = pos {
            tails.insert(pos.0, pos);
        }
    }
    for pos in tails.into_values() {
        db.wait_durable(pos)?;
    }
    Ok(oracle)
}

/// Panics unless `db` answers every query shape exactly as `oracle` does:
/// the full current state, per-key current reads, as-of snapshots at every
/// `sample_every`-th recorded commit time, and complete version histories.
pub fn assert_engine_matches_oracle(db: &dyn EngineHandle, oracle: &Oracle, sample_every: usize) {
    let range = KeyRange::full();
    assert_eq!(
        db.scan_current(&range).expect("scan_current"),
        oracle.snapshot_at(Timestamp::MAX),
        "current snapshot diverged from the oracle"
    );

    for key in oracle.keys() {
        assert_eq!(
            db.get_current(key).expect("get_current"),
            oracle.get_current(key),
            "current read diverged on {key:?}"
        );
        let engine_versions: Vec<(Timestamp, Option<Vec<u8>>)> = db
            .history_between(key, TimeRange::full())
            .expect("history_between")
            .into_iter()
            .map(|v| {
                (
                    v.state
                        .commit_time()
                        .expect("history of a quiesced engine is all committed"),
                    v.value,
                )
            })
            .collect();
        assert_eq!(
            engine_versions,
            oracle.versions(key),
            "version history diverged on {key:?}"
        );
    }

    for ts in oracle
        .all_timestamps()
        .into_iter()
        .step_by(sample_every.max(1))
    {
        assert_eq!(
            db.scan_as_of(&range, ts).expect("scan_as_of"),
            oracle.scan_as_of(&range, ts),
            "as-of snapshot diverged at {ts:?}"
        );
    }
}
