//! Parameterized operation-stream generation.
//!
//! The central knob is the **update : insert ratio** (§5: the authors planned
//! to measure space and redundancy "with different rates of update versus
//! insertion"). A [`WorkloadSpec`] fixes that ratio, the key distribution,
//! the value sizes, and a seed; [`generate_ops`] expands it into a
//! deterministic operation stream that can be replayed against the TSB-tree,
//! the WOBT baseline, and the [`crate::Oracle`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tsb_common::Key;

use crate::distributions::{KeyDistribution, KeySampler};

/// A single logical operation against the multiversion store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Write a value for a key: an *insert* if the key has never been
    /// written, an *update* otherwise (both are version insertions in the
    /// store).
    Put {
        /// The record key.
        key: Key,
        /// The record payload.
        value: Vec<u8>,
    },
    /// Logically delete the key (tombstone version).
    Delete {
        /// The record key.
        key: Key,
    },
}

impl Op {
    /// The key the operation touches.
    pub fn key(&self) -> &Key {
        match self {
            Op::Put { key, .. } | Op::Delete { key } => key,
        }
    }
}

/// A parameterized workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Total operations to generate.
    pub num_ops: usize,
    /// Size of the key space (`0..num_keys` mapped to u64 keys).
    pub num_keys: u64,
    /// Probability that a write targets a key that already exists (an
    /// update) rather than a fresh key (an insert). The effective
    /// update:insert ratio of the stream.
    pub update_fraction: f64,
    /// Probability that an operation is a delete (applied after the
    /// update/insert decision; deletes always target existing keys).
    pub delete_fraction: f64,
    /// Inclusive range of value sizes in bytes.
    pub value_size: (usize, usize),
    /// How keys are selected when updating existing records.
    pub distribution: KeyDistribution,
    /// RNG seed (the stream is deterministic given the spec).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            num_ops: 10_000,
            num_keys: 1_000,
            update_fraction: 0.8,
            delete_fraction: 0.0,
            value_size: (64, 64),
            distribution: KeyDistribution::Uniform,
            seed: 0xBEEF,
        }
    }
}

impl WorkloadSpec {
    /// Convenience constructor fixing the update:insert ratio `u : 1`.
    /// `ratio = 0` produces an insert-only stream.
    pub fn with_update_ratio(mut self, updates_per_insert: f64) -> Self {
        self.update_fraction = if updates_per_insert <= 0.0 {
            0.0
        } else {
            updates_per_insert / (updates_per_insert + 1.0)
        };
        self
    }

    /// Builder for the number of operations.
    pub fn with_ops(mut self, num_ops: usize) -> Self {
        self.num_ops = num_ops;
        self
    }

    /// Builder for the key-space size.
    pub fn with_keys(mut self, num_keys: u64) -> Self {
        self.num_keys = num_keys;
        self
    }

    /// Builder for the value size (fixed).
    pub fn with_value_size(mut self, size: usize) -> Self {
        self.value_size = (size, size);
        self
    }

    /// Builder for the key distribution.
    pub fn with_distribution(mut self, distribution: KeyDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Builder for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Expands a spec into a deterministic operation stream.
pub fn generate_ops(spec: &WorkloadSpec) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut sampler = KeySampler::new(spec.distribution, spec.num_keys);
    let mut existing: Vec<u64> = Vec::new();
    let mut next_fresh: u64 = 0;
    let mut ops = Vec::with_capacity(spec.num_ops);

    for i in 0..spec.num_ops {
        let value_len = if spec.value_size.0 >= spec.value_size.1 {
            spec.value_size.0
        } else {
            rng.gen_range(spec.value_size.0..=spec.value_size.1)
        };
        let delete = !existing.is_empty() && rng.gen_bool(spec.delete_fraction.clamp(0.0, 1.0));
        if delete {
            let idx = rng.gen_range(0..existing.len());
            ops.push(Op::Delete {
                key: Key::from_u64(existing[idx]),
            });
            continue;
        }
        let update = !existing.is_empty()
            && (next_fresh >= spec.num_keys || rng.gen_bool(spec.update_fraction.clamp(0.0, 1.0)));
        let key_index = if update {
            // Choose among existing keys following the configured
            // distribution (clamped to the number of keys created so far).
            let raw = sampler.sample(&mut rng);
            existing[(raw % existing.len() as u64) as usize]
        } else {
            let k = next_fresh.min(spec.num_keys.saturating_sub(1));
            if next_fresh < spec.num_keys {
                existing.push(k);
                next_fresh += 1;
            }
            k
        };
        let mut value = vec![0u8; value_len];
        // Deterministic, compressible-but-distinct payload.
        let tag = format!("op{i}-k{key_index}");
        let tag = tag.as_bytes();
        value[..tag.len().min(value_len)].copy_from_slice(&tag[..tag.len().min(value_len)]);
        ops.push(Op::Put {
            key: Key::from_u64(key_index),
            value,
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let spec = WorkloadSpec::default().with_ops(500);
        assert_eq!(generate_ops(&spec), generate_ops(&spec));
        let other = spec.clone().with_seed(1);
        assert_ne!(generate_ops(&spec), generate_ops(&other));
    }

    #[test]
    fn update_ratio_controls_fresh_vs_existing_writes() {
        let insert_only = WorkloadSpec::default()
            .with_ops(1000)
            .with_keys(2000)
            .with_update_ratio(0.0);
        let ops = generate_ops(&insert_only);
        let distinct: HashSet<_> = ops.iter().map(|o| o.key().clone()).collect();
        assert_eq!(distinct.len(), 1000, "insert-only: every op a fresh key");

        let update_heavy = WorkloadSpec::default()
            .with_ops(1000)
            .with_keys(2000)
            .with_update_ratio(9.0); // 9 updates per insert
        let ops = generate_ops(&update_heavy);
        let distinct: HashSet<_> = ops.iter().map(|o| o.key().clone()).collect();
        assert!(
            distinct.len() < 250,
            "update-heavy stream touched {} distinct keys",
            distinct.len()
        );
    }

    #[test]
    fn key_space_is_respected_even_when_exhausted() {
        let spec = WorkloadSpec::default()
            .with_ops(500)
            .with_keys(20)
            .with_update_ratio(0.0); // wants fresh keys but only 20 exist
        let ops = generate_ops(&spec);
        assert_eq!(ops.len(), 500);
        assert!(ops.iter().all(|o| o.key().as_u64().unwrap() < 20));
    }

    #[test]
    fn deletes_appear_at_roughly_the_requested_rate() {
        let spec = WorkloadSpec {
            delete_fraction: 0.2,
            ..WorkloadSpec::default().with_ops(2000)
        };
        let ops = generate_ops(&spec);
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, Op::Delete { .. }))
            .count();
        assert!(deletes > 250 && deletes < 550, "deletes = {deletes}");
        // Deletes only target keys that have been written.
        let mut written: HashSet<Key> = HashSet::new();
        for op in &ops {
            match op {
                Op::Put { key, .. } => {
                    written.insert(key.clone());
                }
                Op::Delete { key } => assert!(written.contains(key)),
            }
        }
    }

    #[test]
    fn values_respect_the_size_range() {
        let spec = WorkloadSpec {
            value_size: (16, 128),
            ..WorkloadSpec::default().with_ops(300)
        };
        for op in generate_ops(&spec) {
            if let Op::Put { value, .. } = op {
                assert!(value.len() >= 16 && value.len() <= 128);
            }
        }
        // Fixed-size values.
        let spec = WorkloadSpec::default().with_ops(50).with_value_size(99);
        for op in generate_ops(&spec) {
            if let Op::Put { value, .. } = op {
                assert_eq!(value.len(), 99);
            }
        }
    }
}
