//! # tsb-workload
//!
//! Workload generation and ground truth for the TSB-tree reproduction.
//!
//! The paper's planned evaluation (§5) varies the **rate of update versus
//! insertion** and measures space and redundancy under different splitting
//! policies; its motivating examples are stepwise-constant histories such as
//! account balances (Figure 1) and non-deleting record keeping (transcripts,
//! engineering design versions, medical records). This crate provides:
//!
//! * [`KeyDistribution`] — uniform / zipfian / sequential / hotspot key
//!   choice,
//! * [`WorkloadSpec`] / [`generate_ops`] — parameterized operation streams
//!   (insert : update : delete mix, value sizes, deterministic seeds),
//! * [`scenarios`] — the named scenarios used by the examples and
//!   experiments (bank ledger, personnel records, engineering versions),
//! * [`QueryMix`] / [`generate_queries`] — read workloads (current lookups,
//!   as-of lookups, range scans, version histories) sampled from an executed
//!   history,
//! * [`Oracle`] — an in-memory multiversion map answering the same queries
//!   as the TSB-tree; integration and property tests use it as ground truth,
//! * [`ConcurrentSpec`] — deterministic concurrent scenarios: one scripted
//!   writer stream plus per-reader query plans whose read times are pinned
//!   as fractions of the installed history, so multi-threaded runs stay
//!   oracle-checkable (see [`concurrent`]),
//! * [`DurableDriveSpec`] / [`drive_durable`] — a closed-loop
//!   multi-threaded durable write driver: N writer threads each commit
//!   their next op only after the previous was acknowledged, measuring how
//!   many commits share each fsync under the engine's group-commit
//!   pipeline (see [`durable`]),
//! * [`SocketDriveSpec`] / [`drive_socket`] — the same measurement over
//!   the wire: closed-loop and open-loop (bounded-pipeline) connection
//!   threads driving a `tsb-server` through `tsb-client`, reporting
//!   committed throughput and p50/p99 ack latency (see [`socket`]),
//! * [`CrashSpec`] / [`crash_matrix`] — crash scenarios for the durability
//!   subsystem: a deterministic op stream plus an injected device death
//!   (write budget or named crash point), driven against a WAL-attached
//!   tree by the recovery test suite (see [`crash`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod concurrent;
pub mod crash;
pub mod distributions;
pub mod durable;
pub mod equivalence;
pub mod generator;
pub mod oracle;
pub mod queries;
pub mod scenarios;
pub mod socket;

pub use chaos::{ChaosProxy, ChaosSpec, ChaosStats, Fault};
pub use concurrent::{pin_fraction, ConcurrentSpec, ReaderQuery, ReaderQueryKind};
pub use crash::{crash_matrix, CrashSpec, CrashTrigger};
pub use distributions::KeyDistribution;
pub use durable::{
    drive_durable, drive_engine, drive_sharded, DurableDriveReport, DurableDriveSpec,
};
pub use equivalence::{assert_engine_matches_oracle, replay_engine};
pub use generator::{generate_ops, Op, WorkloadSpec};
pub use oracle::Oracle;
pub use queries::{generate_queries, Query, QueryMix};
pub use socket::{drive_socket, SocketDriveReport, SocketDriveSpec};
