//! A reference multiversion store used as ground truth.
//!
//! The oracle keeps every version of every key in a plain in-memory map and
//! answers the same temporal queries as the TSB-tree and the WOBT with the
//! obvious (inefficient) algorithms. Integration and property tests replay a
//! workload into a real structure and the oracle and require identical
//! answers for every query — which is what "no version is ever lost and every
//! snapshot is consistent" means operationally.

use std::collections::BTreeMap;
use std::ops::Bound;

use tsb_common::{Key, KeyRange, Timestamp};

/// One committed change: the commit time and the value (`None` = tombstone).
type VersionEntry = (Timestamp, Option<Vec<u8>>);

/// In-memory multiversion map: for each key, the full list of
/// `(commit time, value-or-tombstone)` in commit order.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    history: BTreeMap<Key, Vec<VersionEntry>>,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Records a committed write (value or tombstone) at `ts`.
    pub fn apply_put(&mut self, key: Key, ts: Timestamp, value: Option<Vec<u8>>) {
        self.history.entry(key).or_default().push((ts, value));
    }

    /// Records a committed value write.
    pub fn put(&mut self, key: impl Into<Key>, ts: Timestamp, value: Vec<u8>) {
        self.apply_put(key.into(), ts, Some(value));
    }

    /// Records a committed delete.
    pub fn delete(&mut self, key: impl Into<Key>, ts: Timestamp) {
        self.apply_put(key.into(), ts, None);
    }

    /// Number of distinct keys ever written.
    pub fn distinct_keys(&self) -> usize {
        self.history.len()
    }

    /// Total number of versions recorded.
    pub fn total_versions(&self) -> usize {
        self.history.values().map(Vec::len).sum()
    }

    /// The value of `key` as of `ts` (`None` if absent or deleted).
    pub fn get_as_of(&self, key: &Key, ts: Timestamp) -> Option<Vec<u8>> {
        let versions = self.history.get(key)?;
        versions
            .iter()
            .rev()
            .find(|(t, _)| *t <= ts)
            .and_then(|(_, v)| v.clone())
    }

    /// The newest value of `key`.
    pub fn get_current(&self, key: &Key) -> Option<Vec<u8>> {
        self.get_as_of(key, Timestamp::MAX)
    }

    /// Every `(key, value)` alive in `range` as of `ts`, in key order.
    pub fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> Vec<(Key, Vec<u8>)> {
        let lower = Bound::Included(range.lo.clone());
        let upper = match &range.hi {
            tsb_common::KeyBound::Finite(k) => Bound::Excluded(k.clone()),
            tsb_common::KeyBound::PlusInfinity => Bound::Unbounded,
        };
        self.history
            .range((lower, upper))
            .filter_map(|(k, _)| self.get_as_of(k, ts).map(|v| (k.clone(), v)))
            .collect()
    }

    /// A full snapshot as of `ts`.
    pub fn snapshot_at(&self, ts: Timestamp) -> Vec<(Key, Vec<u8>)> {
        self.scan_as_of(&KeyRange::full(), ts)
    }

    /// Number of keys alive as of `ts`.
    pub fn count_as_of(&self, range: &KeyRange, ts: Timestamp) -> usize {
        self.scan_as_of(range, ts).len()
    }

    /// The committed history of `key`, oldest first, tombstones included.
    pub fn versions(&self, key: &Key) -> Vec<(Timestamp, Option<Vec<u8>>)> {
        self.history.get(key).cloned().unwrap_or_default()
    }

    /// Every key ever written, in order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.history.keys()
    }

    /// Every commit timestamp recorded, in ascending order (useful for
    /// picking as-of query times in tests and experiments).
    pub fn all_timestamps(&self) -> Vec<Timestamp> {
        let mut ts: Vec<Timestamp> = self
            .history
            .values()
            .flat_map(|v| v.iter().map(|(t, _)| *t))
            .collect();
        ts.sort();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepwise_constant_reads() {
        let mut o = Oracle::new();
        o.put(1u64, Timestamp(5), b"a".to_vec());
        o.put(1u64, Timestamp(10), b"b".to_vec());
        o.delete(1u64, Timestamp(20));
        assert_eq!(o.get_as_of(&Key::from_u64(1), Timestamp(4)), None);
        assert_eq!(
            o.get_as_of(&Key::from_u64(1), Timestamp(5)),
            Some(b"a".to_vec())
        );
        assert_eq!(
            o.get_as_of(&Key::from_u64(1), Timestamp(9)),
            Some(b"a".to_vec())
        );
        assert_eq!(
            o.get_as_of(&Key::from_u64(1), Timestamp(10)),
            Some(b"b".to_vec())
        );
        assert_eq!(o.get_as_of(&Key::from_u64(1), Timestamp(25)), None);
        assert_eq!(o.get_current(&Key::from_u64(1)), None);
        assert_eq!(o.versions(&Key::from_u64(1)).len(), 3);
        assert_eq!(o.total_versions(), 3);
        assert_eq!(o.distinct_keys(), 1);
        assert_eq!(
            o.all_timestamps(),
            vec![Timestamp(5), Timestamp(10), Timestamp(20)]
        );
    }

    #[test]
    fn snapshots_and_ranges() {
        let mut o = Oracle::new();
        for i in 0..10u64 {
            o.put(i, Timestamp(i + 1), format!("v{i}").into_bytes());
        }
        o.delete(3u64, Timestamp(50));
        assert_eq!(o.snapshot_at(Timestamp(5)).len(), 5);
        assert_eq!(o.snapshot_at(Timestamp(100)).len(), 9);
        let range = KeyRange::bounded(Key::from_u64(2), Key::from_u64(6));
        assert_eq!(o.count_as_of(&range, Timestamp(100)), 3); // 2, 4, 5
        assert_eq!(o.count_as_of(&range, Timestamp(6)), 4); // 2..=5 alive then
        assert!(o
            .scan_as_of(&range, Timestamp(100))
            .iter()
            .all(|(k, _)| range.contains(k)));
    }
}
