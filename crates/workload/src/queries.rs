//! Read-workload generation.
//!
//! The query shapes are the temporal queries the paper's structures support
//! (§2.2, §2.5, §3.7): the current version of a record, the version valid at
//! a past time, a snapshot/range scan at a past time, and the full version
//! history of a record. Queries are sampled from an executed write history so
//! that they hit existing keys and meaningful timestamps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tsb_common::{Key, KeyRange, Timestamp};

use crate::oracle::Oracle;

/// A single read query.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// The newest version of a key.
    CurrentGet {
        /// The key to read.
        key: Key,
    },
    /// The version of a key valid at a past time.
    AsOfGet {
        /// The key to read.
        key: Key,
        /// The read timestamp.
        ts: Timestamp,
    },
    /// A key-range scan at a past time.
    RangeScan {
        /// The key range.
        range: KeyRange,
        /// The read timestamp.
        ts: Timestamp,
    },
    /// The full version history of a key.
    VersionHistory {
        /// The key whose history is requested.
        key: Key,
    },
}

/// Relative frequencies of the query shapes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryMix {
    /// Weight of current-version lookups.
    pub current_get: u32,
    /// Weight of as-of lookups.
    pub as_of_get: u32,
    /// Weight of range scans at a past time.
    pub range_scan: u32,
    /// Weight of version-history queries.
    pub version_history: u32,
}

impl Default for QueryMix {
    fn default() -> Self {
        // The paper's motivation: "one usually wants faster access to the
        // most recent records while tolerating slower access to the older,
        // historical records" — current reads dominate.
        QueryMix {
            current_get: 70,
            as_of_get: 20,
            range_scan: 5,
            version_history: 5,
        }
    }
}

impl QueryMix {
    fn total(&self) -> u32 {
        self.current_get + self.as_of_get + self.range_scan + self.version_history
    }
}

/// Samples `count` queries against the write history captured by `oracle`.
pub fn generate_queries(oracle: &Oracle, mix: &QueryMix, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<Key> = oracle.keys().cloned().collect();
    let timestamps = oracle.all_timestamps();
    if keys.is_empty() || timestamps.is_empty() || mix.total() == 0 {
        return Vec::new();
    }
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        let key = keys[rng.gen_range(0..keys.len())].clone();
        let ts = timestamps[rng.gen_range(0..timestamps.len())];
        let roll = rng.gen_range(0..mix.total());
        let q = if roll < mix.current_get {
            Query::CurrentGet { key }
        } else if roll < mix.current_get + mix.as_of_get {
            Query::AsOfGet { key, ts }
        } else if roll < mix.current_get + mix.as_of_get + mix.range_scan {
            // A range spanning a handful of adjacent keys.
            let other = keys[rng.gen_range(0..keys.len())].clone();
            let (lo, hi) = if key <= other {
                (key, other)
            } else {
                (other, key)
            };
            Query::RangeScan {
                range: KeyRange::new(lo, tsb_common::KeyBound::Finite(hi)),
                ts,
            }
        } else {
            Query::VersionHistory { key }
        };
        queries.push(q);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_with_history() -> Oracle {
        let mut o = Oracle::new();
        for i in 0..50u64 {
            o.put(i % 10, Timestamp(i + 1), format!("v{i}").into_bytes());
        }
        o
    }

    #[test]
    fn queries_are_deterministic_and_respect_the_mix() {
        let o = oracle_with_history();
        let mix = QueryMix::default();
        let a = generate_queries(&o, &mix, 500, 7);
        let b = generate_queries(&o, &mix, 500, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let current = a
            .iter()
            .filter(|q| matches!(q, Query::CurrentGet { .. }))
            .count();
        let historical = a.len() - current;
        assert!(
            current > historical,
            "current reads should dominate by default"
        );
    }

    #[test]
    fn single_shape_mixes_work() {
        let o = oracle_with_history();
        let only_history = QueryMix {
            current_get: 0,
            as_of_get: 0,
            range_scan: 0,
            version_history: 1,
        };
        let qs = generate_queries(&o, &only_history, 50, 1);
        assert!(qs.iter().all(|q| matches!(q, Query::VersionHistory { .. })));

        let zero = QueryMix {
            current_get: 0,
            as_of_get: 0,
            range_scan: 0,
            version_history: 0,
        };
        assert!(generate_queries(&o, &zero, 50, 1).is_empty());
        assert!(generate_queries(&Oracle::new(), &QueryMix::default(), 50, 1).is_empty());
    }

    #[test]
    fn range_scans_have_ordered_bounds() {
        let o = oracle_with_history();
        let mix = QueryMix {
            current_get: 0,
            as_of_get: 0,
            range_scan: 1,
            version_history: 0,
        };
        for q in generate_queries(&o, &mix, 100, 3) {
            match q {
                Query::RangeScan { range, .. } => match &range.hi {
                    tsb_common::KeyBound::Finite(hi) => assert!(range.lo <= *hi),
                    tsb_common::KeyBound::PlusInfinity => {}
                },
                _ => panic!("unexpected query shape"),
            }
        }
    }
}
