//! Named scenarios drawn from the paper's motivating applications (§1):
//! financial transactions, personnel/transcript archives, and multiple
//! version histories in engineering design. Each scenario is just a
//! [`WorkloadSpec`] preset (plus a helper for the bank scenario's
//! human-readable payloads), so the examples, the integration tests, and the
//! experiment harness all replay exactly the same streams.

use crate::distributions::KeyDistribution;
use crate::generator::WorkloadSpec;

/// Account-balance ledger (Figure 1): a modest number of accounts receiving
/// a long stream of balance updates — stepwise-constant data with a high
/// update:insert ratio.
pub fn bank_ledger(num_accounts: u64, num_transactions: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        num_ops: num_transactions,
        num_keys: num_accounts,
        update_fraction: 0.95,
        delete_fraction: 0.0,
        value_size: (32, 32),
        distribution: KeyDistribution::Zipfian { theta: 0.8 },
        seed,
    }
}

/// Encodes a human-readable account-balance payload (used by the examples so
/// that the stored values are recognizable).
pub fn balance_payload(balance_cents: i64) -> Vec<u8> {
    format!("balance_cents={balance_cents}").into_bytes()
}

/// Personnel records: most activity is hiring (inserts) with occasional
/// salary/department updates, and rare terminations recorded as deletes of
/// the *current* record (history retained).
pub fn personnel(num_employees: u64, num_ops: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        num_ops,
        num_keys: num_employees,
        update_fraction: 0.4,
        delete_fraction: 0.02,
        value_size: (48, 96),
        distribution: KeyDistribution::Uniform,
        seed,
    }
}

/// Engineering design versions: a small set of design documents, each
/// revised many times; revisions are comparatively large and accesses are
/// hot on a few actively edited documents.
pub fn engineering_versions(num_documents: u64, num_ops: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        num_ops,
        num_keys: num_documents,
        update_fraction: 0.98,
        delete_fraction: 0.0,
        value_size: (200, 400),
        distribution: KeyDistribution::Hotspot {
            hot_fraction: 0.1,
            hot_probability: 0.8,
        },
        seed,
    }
}

/// The §5 parameter sweep: a family of specs that differ only in the
/// update:insert ratio, suitable for the E4 experiment.
///
/// The key space of each spec is sized to `num_ops / (1 + ratio)` so that the
/// stream genuinely has the requested mix: a `0:1` (insert-only) stream never
/// runs out of fresh keys, and a `9:1` stream has enough distinct records for
/// the updates to spread over.
pub fn update_ratio_sweep(num_ops: usize, ratios: &[f64], seed: u64) -> Vec<(f64, WorkloadSpec)> {
    ratios
        .iter()
        .map(|&r| {
            let num_keys = ((num_ops as f64) / (1.0 + r.max(0.0))).ceil().max(1.0) as u64;
            (
                r,
                WorkloadSpec {
                    num_ops,
                    num_keys,
                    delete_fraction: 0.0,
                    value_size: (64, 64),
                    distribution: KeyDistribution::Uniform,
                    seed,
                    ..WorkloadSpec::default()
                }
                .with_update_ratio(r),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_ops, Op};
    use std::collections::HashSet;

    #[test]
    fn bank_ledger_is_update_heavy() {
        let spec = bank_ledger(50, 2000, 1);
        let ops = generate_ops(&spec);
        let distinct: HashSet<_> = ops.iter().map(|o| o.key().clone()).collect();
        assert!(distinct.len() <= 50);
        assert!(ops.len() == 2000);
        assert!(distinct.len() < ops.len() / 10, "mostly updates");
        assert_eq!(balance_payload(12345), b"balance_cents=12345".to_vec());
    }

    #[test]
    fn personnel_contains_deletes_and_inserts() {
        let spec = personnel(500, 3000, 2);
        let ops = generate_ops(&spec);
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, Op::Delete { .. }))
            .count();
        assert!(deletes > 0);
        let distinct: HashSet<_> = ops.iter().map(|o| o.key().clone()).collect();
        assert!(distinct.len() > 300, "hiring keeps adding new employees");
    }

    #[test]
    fn engineering_versions_have_large_payloads_and_few_keys() {
        let spec = engineering_versions(20, 1000, 3);
        let ops = generate_ops(&spec);
        let distinct: HashSet<_> = ops.iter().map(|o| o.key().clone()).collect();
        assert!(distinct.len() <= 20);
        for op in &ops {
            if let Op::Put { value, .. } = op {
                assert!(value.len() >= 200 && value.len() <= 400);
            }
        }
    }

    #[test]
    fn sweep_produces_one_spec_per_ratio() {
        let sweep = update_ratio_sweep(100, &[0.0, 1.0, 4.0, 20.0], 7);
        assert_eq!(sweep.len(), 4);
        // Higher ratios produce fewer distinct keys.
        let distinct_counts: Vec<usize> = sweep
            .iter()
            .map(|(_, spec)| {
                generate_ops(spec)
                    .iter()
                    .map(|o| o.key().clone())
                    .collect::<HashSet<_>>()
                    .len()
            })
            .collect();
        // The 0:1 stream is genuinely insert-only: every op a fresh key.
        assert_eq!(distinct_counts[0], 100);
        assert!(distinct_counts[0] >= distinct_counts[2]);
        assert!(distinct_counts[2] >= distinct_counts[3]);
    }
}
