//! Socket load harness: closed-loop and open-loop drivers for `tsb-server`.
//!
//! [`drive_durable`](crate::drive_durable) measures the group-commit
//! pipeline with in-process threads; this module measures it **over the
//! wire**. Each connection runs on its own thread through a [`TsbClient`]:
//!
//! * **Closed loop** (`pipeline_depth == 1`): a connection issues its next
//!   durable put only after the previous ack arrived — the honest model
//!   for commit *latency*, and the single-blocking-connection baseline of
//!   the E13 experiment.
//! * **Open loop** (`pipeline_depth > 1`): a connection keeps up to
//!   `pipeline_depth` requests in flight, sending eagerly and reaping acks
//!   as they arrive. The server drains each burst, executes the writes
//!   through the deferred-durability API, and parks once per batch — so a
//!   single pipelined connection already amortizes fsyncs the way several
//!   closed-loop connections do. (The window is bounded on purpose: a
//!   truly unbounded open loop measures queue growth, not the server.)
//!
//! Per-request latency is measured send-to-ack and reported as p50/p99
//! across all connections; everything random is derived from the spec's
//! seed exactly as in the in-process driver, so two runs against equal
//! servers commit identical key/value streams.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tsb_client::protocol::{Reply, Request};
use tsb_client::TsbClient;
use tsb_common::{Key, TsbError, TsbResult};

/// Parameters of one socket load run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SocketDriveSpec {
    /// Number of concurrent connections (one thread each).
    pub connections: usize,
    /// Durable puts each connection issues.
    pub ops_per_conn: usize,
    /// Maximum requests a connection keeps in flight: 1 = closed loop,
    /// >1 = open loop with a bounded window.
    pub pipeline_depth: usize,
    /// Size of the shared key space (`0..num_keys` mapped to u64 keys).
    pub num_keys: u64,
    /// Payload size in bytes of every put.
    pub value_size: usize,
    /// Base seed; connection `i` draws its stream from `seed + i`.
    pub seed: u64,
}

impl Default for SocketDriveSpec {
    fn default() -> Self {
        SocketDriveSpec {
            connections: 4,
            ops_per_conn: 250,
            pipeline_depth: 1,
            num_keys: 512,
            value_size: 48,
            seed: 0x50C7_E7D1,
        }
    }
}

/// What one [`drive_socket`] run measured.
#[derive(Clone, Debug)]
pub struct SocketDriveReport {
    /// Total acknowledged puts across all connections.
    pub committed_ops: u64,
    /// Wall-clock time from first connect to last drain.
    pub elapsed: Duration,
    /// Send-to-ack latency of every acknowledged put, sorted ascending.
    pub latencies: Vec<Duration>,
}

impl SocketDriveReport {
    /// Acknowledged puts per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.committed_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `q`-th latency quantile (`0.0..=1.0`); zero when nothing was
    /// measured, so report cells never divide by an empty run.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.latencies.len() - 1) as f64).round() as usize;
        self.latencies[rank]
    }

    /// Median send-to-ack latency.
    pub fn p50(&self) -> Duration {
        self.latency_quantile(0.50)
    }

    /// 99th-percentile send-to-ack latency.
    pub fn p99(&self) -> Duration {
        self.latency_quantile(0.99)
    }
}

/// Runs the load: `spec.connections` threads, each a [`TsbClient`] issuing
/// `spec.ops_per_conn` durable puts with at most `spec.pipeline_depth` in
/// flight. Returns committed throughput and the merged latency
/// distribution.
pub fn drive_socket(addr: SocketAddr, spec: &SocketDriveSpec) -> TsbResult<SocketDriveReport> {
    let start = Instant::now();
    let per_conn = std::thread::scope(|s| -> TsbResult<Vec<ConnResult>> {
        let handles: Vec<_> = (0..spec.connections.max(1))
            .map(|i| {
                let spec = spec.clone();
                s.spawn(move || conn_loop(addr, &spec, i as u64))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect()
    })?;
    let elapsed = start.elapsed();
    let mut committed = 0u64;
    let mut latencies = Vec::new();
    for conn in per_conn {
        committed += conn.committed;
        latencies.extend(conn.latencies);
    }
    latencies.sort();
    Ok(SocketDriveReport {
        committed_ops: committed,
        elapsed,
        latencies,
    })
}

struct ConnResult {
    committed: u64,
    latencies: Vec<Duration>,
}

fn conn_loop(addr: SocketAddr, spec: &SocketDriveSpec, conn_idx: u64) -> TsbResult<ConnResult> {
    let mut client = TsbClient::connect(addr)?;
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(conn_idx));
    let depth = spec.pipeline_depth.max(1);
    let mut latencies = Vec::with_capacity(spec.ops_per_conn);
    let mut committed = 0u64;
    // id -> send time of every request still in flight.
    let mut in_flight: std::collections::HashMap<u64, Instant> = std::collections::HashMap::new();
    let mut sent = 0usize;
    while sent < spec.ops_per_conn || !in_flight.is_empty() {
        while sent < spec.ops_per_conn && in_flight.len() < depth {
            let key = rng.gen_range(0..spec.num_keys.max(1));
            let mut value = vec![0u8; spec.value_size];
            for byte in value.iter_mut() {
                *byte = rng.gen_range(0..=u8::MAX as u32) as u8;
            }
            let id = client.send(&Request::Put {
                key: Key::from_u64(key),
                value,
            })?;
            in_flight.insert(id, Instant::now());
            sent += 1;
        }
        let (id, reply) = client.recv_any()?;
        let sent_at = in_flight
            .remove(&id)
            .ok_or_else(|| TsbError::corruption(format!("reply for unknown request id {id}")))?;
        match reply {
            Reply::Committed { .. } => {
                latencies.push(sent_at.elapsed());
                committed += 1;
            }
            Reply::Error { code, message } => {
                return Err(tsb_client::remote_error(code, &message));
            }
            other => {
                return Err(TsbError::corruption(format!(
                    "unexpected reply to a put: {other:?}"
                )));
            }
        }
    }
    Ok(ConnResult {
        committed,
        latencies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_quantiles_are_zero_not_panic() {
        let report = SocketDriveReport {
            committed_ops: 0,
            elapsed: Duration::from_millis(1),
            latencies: Vec::new(),
        };
        assert_eq!(report.p50(), Duration::ZERO);
        assert_eq!(report.p99(), Duration::ZERO);
        assert_eq!(report.ops_per_sec(), 0.0);
    }

    #[test]
    fn quantiles_pick_from_the_sorted_tail() {
        let report = SocketDriveReport {
            committed_ops: 100,
            elapsed: Duration::from_secs(1),
            latencies: (1..=100).map(Duration::from_micros).collect(),
        };
        assert_eq!(report.p50(), Duration::from_micros(51));
        assert_eq!(report.p99(), Duration::from_micros(99));
        assert_eq!(report.latency_quantile(1.0), Duration::from_micros(100));
        assert_eq!(report.latency_quantile(0.0), Duration::from_micros(1));
    }
}
