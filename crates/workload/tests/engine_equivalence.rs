//! One oracle, every engine: the same scripted workload replayed through
//! [`EngineHandle`] must produce identical answers from a single-tree
//! engine, a sharded engine at several shard counts, and a replica that
//! only ever saw the shipped log. The test is deliberately API-shaped —
//! everything goes through the trait object, exactly as the server's
//! dispatch does, so a divergence here is a divergence a client could see.

use tsb_common::FsyncPolicy;
use tsb_core::{EngineHandle, ReplicationSource, TsbOptions};
use tsb_workload::{
    assert_engine_matches_oracle, generate_ops, replay_engine, KeyDistribution, WorkloadSpec,
};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-engine-equiv-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_ops: 600,
        num_keys: 64,
        update_fraction: 0.55,
        delete_fraction: 0.12,
        value_size: (8, 40),
        distribution: KeyDistribution::Hotspot {
            hot_fraction: 0.2,
            hot_probability: 0.8,
        },
        seed: 0x5EED_E001,
    }
}

fn check(db: &dyn EngineHandle) {
    let ops = generate_ops(&spec());
    let oracle = replay_engine(db, &ops).unwrap();
    assert_engine_matches_oracle(db, &oracle, 7);
}

#[test]
fn concurrent_engine_matches_oracle_through_the_trait() {
    let dir = TempDir::new("conc");
    let db = TsbOptions::durable(&dir.0)
        .small_pages()
        .fsync(FsyncPolicy::EveryN(8))
        .open_concurrent()
        .unwrap();
    check(&db);
}

#[test]
fn sharded_engine_matches_oracle_through_the_trait() {
    for shards in [1usize, 4] {
        let dir = TempDir::new("shard");
        let db = TsbOptions::durable(&dir.0)
            .small_pages()
            .fsync(FsyncPolicy::EveryN(8))
            .shards(shards)
            .open()
            .unwrap();
        check(&db);
    }
}

#[test]
fn synced_replica_matches_the_primary_oracle_through_the_trait() {
    let pdir = TempDir::new("prim");
    let rdir = TempDir::new("repl");
    let primary = TsbOptions::durable(&pdir.0)
        .small_pages()
        .fsync(FsyncPolicy::Always)
        .open_concurrent()
        .unwrap();

    // Build the oracle by replaying on the primary, then ship the whole
    // log and demand the replica answers for it — reads only, through the
    // same trait surface.
    let ops = generate_ops(&spec());
    let oracle = replay_engine(&primary, &ops).unwrap();

    let source = ReplicationSource::new(&primary).unwrap();
    let replica = TsbOptions::durable(&rdir.0)
        .small_pages()
        .fsync(FsyncPolicy::Always)
        .open_replica()
        .unwrap();
    loop {
        if replica.needs_base() {
            replica.install_base(&source.base().unwrap()).unwrap();
        }
        let batch = source
            .poll(
                replica.resume_lsn().expect("serving replica has a cursor"),
                replica.worm_have(),
                1 << 20,
            )
            .unwrap();
        if batch.needs_rebase {
            replica.install_base(&source.base().unwrap()).unwrap();
            continue;
        }
        let done = batch.records.is_empty();
        replica.apply_batch(&batch).unwrap();
        if done {
            break;
        }
    }

    assert_engine_matches_oracle(&replica, &oracle, 7);
}
