//! Audit trail: time-range queries over the key × time plane.
//!
//! Regulators rarely ask for a single balance; they ask "show me every
//! change to these accounts during this quarter" and "which accounts changed
//! at all since the last audit?". Because every TSB-tree node spans a key
//! range × time range rectangle, both questions are answered by descending
//! only into the nodes whose rectangles overlap the query rectangle —
//! regardless of whether those nodes now live on the magnetic or the
//! write-once store.
//!
//! Run with: `cargo run -p tsb-examples --example audit_trail`

use tsb_core::{Key, KeyRange, SplitPolicyKind, TimeRange, TsbConfig, TsbOptions};
use tsb_workload::{generate_ops, scenarios, Op};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg =
        TsbConfig::default()
            .with_page_size(2048)
            .with_split_policy(SplitPolicyKind::Threshold {
                key_split_live_fraction: 0.6,
            });
    let mut ledger = TsbOptions::in_memory().config(cfg).open_tree()?;

    // Replay a year of activity over 150 accounts, remembering the timestamp
    // at the end of each "quarter".
    let ops = generate_ops(&scenarios::bank_ledger(150, 6_000, 7));
    let mut quarter_ends = Vec::new();
    for (i, op) in ops.into_iter().enumerate() {
        match op {
            Op::Put { key, value } => {
                ledger.insert(key, value)?;
            }
            Op::Delete { key } => {
                ledger.delete(key)?;
            }
        }
        if (i + 1) % 1500 == 0 {
            quarter_ends.push(ledger.now().prev());
        }
    }
    println!("year replayed; quarter ends at T = {quarter_ends:?}\n");

    // --- Q3 audit over a block of accounts ------------------------------------
    let accounts = KeyRange::bounded(Key::from_u64(10), Key::from_u64(30));
    let q3 = TimeRange::bounded(quarter_ends[1].next(), quarter_ends[2].next());
    let q3_changes = ledger.scan_versions(&accounts, q3)?;
    println!(
        "Q3 audit: {} balance changes across accounts 10..30",
        q3_changes.len()
    );
    for v in q3_changes.iter().take(5) {
        println!(
            "  account {:>3}  T={:<6} {}",
            v.key,
            v.commit_time().ok_or("uncommitted version in audit")?,
            String::from_utf8_lossy(v.value.as_deref().unwrap_or(b"<deleted>"))
        );
    }
    if q3_changes.len() > 5 {
        println!("  ... and {} more", q3_changes.len() - 5);
    }

    // --- single-account statement for the same quarter --------------------------
    let account = Key::from_u64(12);
    let statement = ledger.history_between(&account, q3)?;
    println!(
        "\naccount 12 statement for Q3: {} changes (lifetime total {})",
        statement.len(),
        ledger.version_count(&account)?
    );

    // --- incremental audit: what changed since the last audit? -------------------
    let since_last_audit = TimeRange::from(quarter_ends[2].next());
    let changed = ledger.changed_keys_between(&KeyRange::full(), since_last_audit)?;
    println!(
        "\nincremental audit since Q3 close: {} of 150 accounts changed",
        changed.len()
    );

    // Cross-check one cell of the audit against point queries.
    if let Some(v) = q3_changes.first() {
        let ts = v.commit_time().ok_or("uncommitted version in audit")?;
        assert_eq!(ledger.get_as_of(&v.key, ts)?, v.value);
    }
    ledger.verify()?;
    println!("\nstructure verified; audit complete");
    Ok(())
}
