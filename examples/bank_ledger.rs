//! Bank ledger: the paper's motivating financial-records scenario (§1,
//! Figure 1). A fixed set of accounts receives a long stream of balance
//! updates; the ledger must never forget a balance, auditors ask "what was
//! the balance of account X on date T?", and regulators take end-of-quarter
//! snapshots.
//!
//! The example replays the `bank_ledger` workload into a TSB-tree whose
//! time-preferring policy migrates superseded balances to the (cheap,
//! write-once) historical store, then answers the audit queries and reports
//! where the bytes ended up.
//!
//! Run with: `cargo run -p tsb-examples --example bank_ledger`

use tsb_core::{Key, SplitPolicyKind, Timestamp, TsbConfig, TsbOptions};
use tsb_workload::{generate_ops, scenarios, Op, Oracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accounts = 200u64;
    let transactions = 8_000usize;

    let cfg =
        TsbConfig::default()
            .with_page_size(2048)
            .with_split_policy(SplitPolicyKind::Threshold {
                key_split_live_fraction: 0.6,
            });
    let mut ledger = TsbOptions::in_memory().config(cfg).open_tree()?;
    let mut oracle = Oracle::new();

    println!("replaying {transactions} transactions against {accounts} accounts...");
    let spec = scenarios::bank_ledger(accounts, transactions, 2026);
    let mut quarter_marks: Vec<Timestamp> = Vec::new();
    for (i, op) in generate_ops(&spec).into_iter().enumerate() {
        match op {
            Op::Put { key, value } => {
                let ts = ledger.insert(key.clone(), value.clone())?;
                oracle.put(key, ts, value);
            }
            Op::Delete { key } => {
                let ts = ledger.delete(key.clone())?;
                oracle.delete(key, ts);
            }
        }
        // Remember an "end of quarter" timestamp every 2000 transactions.
        if (i + 1) % 2000 == 0 {
            quarter_marks.push(ledger.now().prev());
        }
    }

    // --- audit: spot-check balances at each quarter end ------------------------
    println!("\nquarter-end audit (account 0..4):");
    for (q, ts) in quarter_marks.iter().enumerate() {
        print!("  Q{}  T={ts:<6}", q + 1);
        for account in 0..4u64 {
            let key = Key::from_u64(account);
            let ledger_view = ledger.get_as_of(&key, *ts)?;
            let oracle_view = oracle.get_as_of(&key, *ts);
            assert_eq!(
                ledger_view, oracle_view,
                "audit mismatch for account {account}"
            );
            print!(
                " acct{account}={}",
                ledger_view
                    .as_deref()
                    .map(|v| String::from_utf8_lossy(v).into_owned())
                    .unwrap_or_else(|| "-".into())
            );
        }
        println!();
    }

    // --- regulator snapshot: every account balance at the last quarter ---------
    let last_quarter = *quarter_marks.last().ok_or("no quarters recorded")?;
    let snapshot = ledger.snapshot_at(last_quarter)?;
    assert_eq!(snapshot, oracle.snapshot_at(last_quarter));
    println!(
        "\nsnapshot at T={last_quarter}: {} accounts, consistent with the oracle",
        snapshot.len()
    );

    // --- account statement: the full history of one busy account ---------------
    let busy = Key::from_u64(0);
    let statement = ledger.versions(&busy)?;
    println!("account 0 statement: {} balance changes", statement.len());
    assert_eq!(statement.len(), oracle.versions(&busy).len());

    // --- where did the bytes go? -------------------------------------------------
    let stats = ledger.tree_stats()?;
    println!("\nledger census:\n{stats}");
    println!(
        "\ncurrent store holds {} live balances; {} superseded versions were migrated to the write-once store",
        stats.live_versions,
        stats.version_copies - stats.live_versions
    );
    ledger.verify()?;
    Ok(())
}
