//! Shared-tree reads under a single-writer pipeline, on persistent stores.
//!
//! The paper's operating model (§1, §4.1): the historical database is
//! immutable once written, so as-of queries and backups can be served to
//! any number of readers while the current database keeps absorbing
//! updates. This example runs [`ConcurrentTsb`] over *file-backed* stores:
//! four reader threads continuously answer fence-pinned as-of lookups and
//! snapshot dumps while one writer commits a burst of account updates;
//! then the engine is flushed, dropped, and reopened to show that every
//! version survived the deferred-encode write path.
//!
//! Run with: `cargo run -p tsb-examples --example concurrent_readers`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tsb_core::{ConcurrentTsb, Key, KeyRange, TsbConfig, TsbTree};
use tsb_storage::{IoStats, MagneticStore, WormStore};

const ACCOUNTS: u64 = 64;
const UPDATES: u64 = 4_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("tsb-concurrent-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mag_path = dir.join("current.db");
    let worm_path = dir.join("history.worm");
    let _ = std::fs::remove_file(&mag_path);
    let _ = std::fs::remove_file(&worm_path);

    let cfg = TsbConfig::small_pages();
    let open_stores = |stats: Arc<IoStats>| -> Result<_, Box<dyn std::error::Error>> {
        let magnetic = Arc::new(MagneticStore::open_file(
            &mag_path,
            cfg.page_size,
            Arc::clone(&stats),
        )?);
        let worm = Arc::new(WormStore::open_file(
            &worm_path,
            cfg.worm_sector_size,
            stats,
        )?);
        Ok((magnetic, worm))
    };

    // ----- phase 1: concurrent traffic ------------------------------------
    let (magnetic, worm) = open_stores(Arc::new(IoStats::new()))?;
    let db = ConcurrentTsb::create(magnetic, worm, cfg.clone())?;
    for account in 0..ACCOUNTS {
        db.insert(Key::from_u64(account), b"balance=0".to_vec())?;
    }

    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    // Worker closures return `TsbResult` instead of unwrapping, so an
    // engine error inside a thread surfaces through `join` as the error
    // message the README promises, not a panic-induced abort.
    std::thread::scope(|s| -> tsb_core::TsbResult<()> {
        let writer = {
            let db = db.clone();
            s.spawn(move || -> tsb_core::TsbResult<()> {
                for i in 0..UPDATES {
                    let account = i % ACCOUNTS;
                    db.insert(
                        Key::from_u64(account),
                        format!("balance={}", i * 10).into_bytes(),
                    )?;
                }
                Ok(())
            })
        };
        let mut readers = Vec::new();
        for r in 0..4u64 {
            let db = db.clone();
            let stop = &stop;
            let reads = &reads;
            readers.push(s.spawn(move || -> tsb_core::TsbResult<()> {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Fence-pinned reads: always a fully-installed state.
                    let snap = db.begin_snapshot();
                    let account = Key::from_u64((r * 17 + i) % ACCOUNTS);
                    let balance = snap.get(&account)?;
                    assert!(balance.is_some(), "seeded account vanished");
                    if i.is_multiple_of(64) {
                        let rows = snap.dump()?;
                        assert_eq!(rows.len(), ACCOUNTS as usize);
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                Ok(())
            }));
        }
        let written = writer.join().expect("writer thread panicked");
        stop.store(true, Ordering::Relaxed);
        written?;
        for reader in readers {
            reader.join().expect("reader thread panicked")?;
        }
        Ok(())
    })?;

    db.verify()?;
    db.verify_cache_coherence()?;
    println!(
        "phase 1: {} updates committed, {} concurrent reads served, fence at T={}",
        UPDATES,
        reads.load(Ordering::Relaxed),
        db.last_installed()
    );

    // ----- phase 2: flush, drop, reopen -----------------------------------
    db.flush()?;
    let final_state = db.snapshot_at(db.last_installed())?;
    drop(db);

    let (magnetic, worm) = open_stores(Arc::new(IoStats::new()))?;
    let reopened = TsbTree::open(magnetic, worm, cfg)?;
    reopened.verify()?;
    let recovered = reopened.scan_current(&KeyRange::full())?;
    assert_eq!(recovered, final_state, "reopened state diverged");
    // Deep history survived on the WORM store too: the oldest version of
    // account 0 is still its seed value.
    let first = reopened
        .versions(&Key::from_u64(0))?
        .into_iter()
        .next()
        .ok_or("account 0 lost its history across reopen")?;
    assert_eq!(first.value.as_deref(), Some(b"balance=0".as_ref()));
    println!(
        "phase 2: reopened from {} — {} accounts recovered, history intact",
        dir.display(),
        recovered.len()
    );

    let _ = std::fs::remove_file(&mag_path);
    let _ = std::fs::remove_file(&worm_path);
    Ok(())
}
