//! The `tsb-examples` package exists to host the runnable examples in this
//! directory (`cargo run -p tsb-examples --example <name>`); it exports
//! nothing itself.
#![forbid(unsafe_code)]
