//! Personnel records with a secondary index (§3.6).
//!
//! Employee records (primary key = employee id) carry a department as a
//! secondary attribute. The secondary index is itself a TSB-tree of
//! `<timestamp, secondary key, primary key>` entries, inheriting the
//! timestamp of each primary change, so questions like "who was in
//! Engineering on date T?" and "how many people were in Sales at year end?"
//! are answered from the secondary index alone.
//!
//! Run with: `cargo run -p tsb-examples --example personnel_history`

use tsb_core::{Key, SecondaryIndex, Timestamp, TsbConfig, TsbOptions};

const DEPARTMENTS: &[&str] = &["engineering", "sales", "support"];

fn record(name: &str, dept: &str, salary: u32) -> Vec<u8> {
    format!("name={name};dept={dept};salary={salary}").into_bytes()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut people = TsbOptions::in_memory()
        .config(TsbConfig::default())
        .open_tree()?;
    let mut by_dept = SecondaryIndex::new_in_memory(TsbConfig::default())?;

    // --- hire 90 employees across three departments -----------------------------
    println!("hiring 90 employees...");
    for emp in 0..90u64 {
        let dept = DEPARTMENTS[(emp % 3) as usize];
        let ts = people.insert(
            Key::from_u64(emp),
            record(
                &format!("employee-{emp}"),
                dept,
                50_000 + (emp as u32) * 100,
            ),
        )?;
        by_dept.insert_entry(&Key::from(dept), &Key::from_u64(emp), ts)?;
    }
    let after_hiring = people.now().prev();

    // --- a reorganization moves every third engineer into sales -----------------
    println!("reorganization: engineers 0,6,12,... move to sales");
    let mut moved = 0u64;
    for emp in (0..90u64).filter(|e| e % 3 == 0 && e % 2 == 0) {
        let ts = people.insert(
            Key::from_u64(emp),
            record(&format!("employee-{emp}"), "sales", 55_000),
        )?;
        by_dept.record_change(
            Some(&Key::from("engineering")),
            Some(&Key::from("sales")),
            &Key::from_u64(emp),
            ts,
        )?;
        moved += 1;
    }
    let after_reorg = people.now().prev();

    // --- one resignation ----------------------------------------------------------
    let leaver = 7u64;
    let ts = people.delete(Key::from_u64(leaver))?;
    by_dept.record_change(Some(&Key::from("sales")), None, &Key::from_u64(leaver), ts)?;

    // --- department head-counts through time ---------------------------------------
    println!("\nhead-count by department:");
    println!(
        "{:<14} {:>10} {:>12} {:>8}",
        "department", "after hire", "after reorg", "now"
    );
    for dept in DEPARTMENTS {
        let d = Key::from(*dept);
        println!(
            "{:<14} {:>10} {:>12} {:>8}",
            dept,
            by_dept.count_as_of(&d, after_hiring)?,
            by_dept.count_as_of(&d, after_reorg)?,
            by_dept.count_as_of(&d, Timestamp::MAX)?,
        );
    }
    assert_eq!(
        by_dept.count_as_of(&Key::from("engineering"), after_hiring)?,
        30
    );
    assert_eq!(
        by_dept.count_as_of(&Key::from("engineering"), after_reorg)?,
        30 - moved as usize
    );

    // --- who was in engineering right after hiring? ----------------------------------
    let engineers_then = by_dept.primaries_as_of(&Key::from("engineering"), after_hiring)?;
    println!(
        "\nengineering after hiring: {} people",
        engineers_then.len()
    );

    // --- cross-check one employee's own history ---------------------------------------
    let emp0_history = people.versions(&Key::from_u64(0))?;
    println!(
        "employee 0 has {} record versions (hire + reorg)",
        emp0_history.len()
    );
    assert_eq!(emp0_history.len(), 2);

    people.verify()?;
    by_dept.tree().verify()?;
    println!("\nprimary and secondary structures verified");
    Ok(())
}
