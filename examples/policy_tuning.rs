//! Policy tuning: run the same update-heavy workload under every splitting
//! policy and split-time choice, and print the trade-off the paper describes
//! in §3.2/§3.3 — time splits minimize the (expensive, erasable) current
//! store at the price of redundancy; key splits minimize total space and
//! redundancy at the price of a larger current store; the cost-based policy
//! follows whichever device is cheaper.
//!
//! Run with: `cargo run -p tsb-examples --example policy_tuning`

use tsb_core::{SplitPolicyKind, SplitTimeChoice, TsbConfig, TsbOptions};
use tsb_workload::{generate_ops, Op, WorkloadSpec};

fn run(
    policy: SplitPolicyKind,
    choice: SplitTimeChoice,
    ops: &[Op],
) -> tsb_core::TsbResult<tsb_core::TreeStats> {
    let mut cfg = TsbConfig::default()
        .with_page_size(1024)
        .with_worm_sector_size(512)
        .with_split_policy(policy)
        .with_split_time_choice(choice);
    cfg.max_key_len = 64;
    let mut tree = TsbOptions::in_memory().config(cfg).open_tree()?;
    for op in ops {
        match op {
            Op::Put { key, value } => {
                tree.insert(key.clone(), value.clone())?;
            }
            Op::Delete { key } => {
                tree.delete(key.clone())?;
            }
        }
    }
    tree.verify()?;
    tree.tree_stats()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec::default()
        .with_ops(6_000)
        .with_keys(300)
        .with_update_ratio(4.0) // 4 updates per insert
        .with_value_size(64);
    let ops = generate_ops(&spec);
    println!(
        "workload: {} operations over {} keys, update:insert = 4:1\n",
        spec.num_ops, spec.num_keys
    );

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "policy", "magnetic KB", "worm KB", "total KB", "redundancy", "cost CS"
    );
    let policies: Vec<(String, SplitPolicyKind, SplitTimeChoice)> = vec![
        (
            "wobt-like (time@now)".into(),
            SplitPolicyKind::WobtLike,
            SplitTimeChoice::CurrentTime,
        ),
        (
            "time-preferring/now".into(),
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::CurrentTime,
        ),
        (
            "time-preferring/last-update".into(),
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "time-preferring/median".into(),
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::MedianVersion,
        ),
        (
            "threshold 2/3".into(),
            SplitPolicyKind::default(),
            SplitTimeChoice::LastUpdate,
        ),
        (
            "cost-based".into(),
            SplitPolicyKind::CostBased,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "key-preferring".into(),
            SplitPolicyKind::KeyPreferring,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "key-only (naive B+-tree)".into(),
            SplitPolicyKind::KeyOnly,
            SplitTimeChoice::LastUpdate,
        ),
    ];

    for (label, policy, choice) in policies {
        let stats = run(policy, choice, &ops)?;
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>12.1} {:>12.3} {:>10.0}",
            label,
            stats.space.magnetic_bytes as f64 / 1024.0,
            stats.space.worm_bytes as f64 / 1024.0,
            stats.space.total_bytes() as f64 / 1024.0,
            stats.redundancy_ratio(),
            stats.storage_cost,
        );
    }

    println!(
        "\nreading the table: time splits shrink the magnetic column and grow the worm and \
         redundancy columns; key splits do the opposite; choosing the split time at the last \
         update (instead of 'now') cuts redundancy versus the WOBT-like policy."
    );
    Ok(())
}
