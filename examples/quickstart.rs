//! Quickstart: create a TSB-tree, write a small multiversion history, and
//! run every kind of temporal query the paper describes.
//!
//! Run with: `cargo run -p tsb-examples --example quickstart`

use tsb_core::{Key, KeyRange, TsbConfig, TsbOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tree over in-memory simulated devices: a magnetic-disk page store for
    // the current database and a write-once sector store for history.
    let mut tree = TsbOptions::in_memory()
        .config(TsbConfig::default())
        .open_tree()?;

    // --- write a little stepwise-constant history (Figure 1) --------------
    let t_open = tree.insert("acct-1001", b"owner=Joe;balance=100".to_vec())?;
    tree.insert("acct-1002", b"owner=Pete;balance=50".to_vec())?;
    let t_deposit = tree.insert("acct-1001", b"owner=Joe;balance=250".to_vec())?;
    let t_close = tree.delete("acct-1002")?;
    println!("wrote history: open@{t_open}, deposit@{t_deposit}, close@{t_close}");

    // --- current lookups ---------------------------------------------------
    let now_1001 = tree
        .get_current(&Key::from("acct-1001"))?
        .ok_or("acct-1001 missing from the current store")?;
    println!(
        "acct-1001 now:           {}",
        String::from_utf8_lossy(&now_1001)
    );
    assert!(tree.get_current(&Key::from("acct-1002"))?.is_none());
    println!("acct-1002 now:           <deleted>");

    // --- as-of lookups (rollback database) ----------------------------------
    let at_open = tree
        .get_as_of(&Key::from("acct-1001"), t_open)?
        .ok_or("acct-1001 invisible at its own open time")?;
    println!(
        "acct-1001 as of T={t_open}:    {}",
        String::from_utf8_lossy(&at_open)
    );
    let before_close = tree
        .get_as_of(&Key::from("acct-1002"), t_close.prev())?
        .ok_or("acct-1002 invisible just before its close")?;
    println!(
        "acct-1002 just before close: {}",
        String::from_utf8_lossy(&before_close)
    );

    // --- snapshots and range scans ------------------------------------------
    let snapshot = tree.snapshot_at(t_deposit)?;
    println!("snapshot at T={t_deposit}: {} records", snapshot.len());
    let range = KeyRange::bounded(Key::from("acct-1000"), Key::from("acct-1999"));
    let current_accounts = tree.scan_current(&range)?;
    println!("live accounts in range:  {}", current_accounts.len());

    // --- full version history ------------------------------------------------
    for version in tree.versions(&Key::from("acct-1001"))? {
        println!(
            "acct-1001 history: {} -> {}",
            version
                .commit_time()
                .ok_or("uncommitted version in history")?,
            version
                .value
                .as_deref()
                .map(String::from_utf8_lossy)
                .unwrap_or_else(|| "<tombstone>".into())
        );
    }

    // --- transactions ---------------------------------------------------------
    let txn = tree.begin_txn();
    tree.txn_insert(txn, "acct-1003", b"owner=Sue;balance=10".to_vec())?;
    // Uncommitted data is invisible to readers and erasable on abort.
    assert!(tree.get_current(&Key::from("acct-1003"))?.is_none());
    let commit_ts = tree.commit_txn(txn)?;
    println!("acct-1003 committed at T={commit_ts}");

    // --- structure and space ---------------------------------------------------
    let stats = tree.tree_stats()?;
    println!("\ntree census:\n{stats}");
    tree.verify()?;
    println!("structural invariants verified");
    Ok(())
}
