//! Lock-free backups with read-only transactions (§4.1).
//!
//! "A read-only transaction, e.g., one that does file backup, can run
//! without concurrency control ... it is given a timestamp when it is
//! initiated ... it will never have to wait for an updater." The example
//! starts a backup, keeps committing new transactions while the backup is
//! "running", and shows that the backup sees exactly the state as of its
//! start timestamp — including ignoring a transaction that was in flight
//! (uncommitted) when the backup began.
//!
//! Run with: `cargo run -p tsb-examples --example snapshot_backup`

use tsb_core::{Key, TsbConfig, TsbOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut store = TsbOptions::in_memory()
        .config(TsbConfig::default())
        .open_tree()?;

    // Seed the database.
    for i in 0..500u64 {
        store.insert(
            Key::from_u64(i),
            format!("document {i}, revision 1").into_bytes(),
        )?;
    }

    // A writer transaction is in flight when the backup starts; its data must
    // not appear in the backup even after it commits later.
    let in_flight = store.begin_txn();
    store.txn_insert(in_flight, Key::from_u64(999), b"not yet committed".to_vec())?;

    // Start the backup: it is pinned to the current time and takes no locks.
    let backup_ts = store.begin_snapshot().timestamp();
    println!("backup started at T={backup_ts}");

    // Meanwhile, normal traffic continues: revisions, new documents, deletes,
    // and the in-flight transaction commits.
    for i in 0..250u64 {
        store.insert(
            Key::from_u64(i),
            format!("document {i}, revision 2").into_bytes(),
        )?;
    }
    for i in 500..600u64 {
        store.insert(
            Key::from_u64(i),
            format!("document {i}, revision 1").into_bytes(),
        )?;
    }
    store.delete(Key::from_u64(42))?;
    let late_commit = store.commit_txn(in_flight)?;
    println!("concurrent activity finished (late commit at T={late_commit})");

    // Run the backup against the pinned timestamp.
    let backup = store.snapshot_as_of(backup_ts).dump()?;
    println!("backup contains {} documents", backup.len());

    // The backup is exactly the pre-activity state.
    assert_eq!(
        backup.len(),
        500,
        "new documents and late commits are excluded"
    );
    assert!(
        backup
            .iter()
            .all(|(_, v)| String::from_utf8_lossy(v).contains("revision 1")),
        "the backup never observes revision 2"
    );
    assert!(
        backup.iter().any(|(k, _)| k.as_u64() == Some(42)),
        "the document deleted after the backup started is still in the backup"
    );
    assert!(
        !backup.iter().any(|(k, _)| k.as_u64() == Some(999)),
        "data uncommitted at backup start is excluded even though it committed later"
    );

    // The live database, by contrast, reflects everything.
    let live = store.scan_current(&tsb_core::KeyRange::full())?;
    println!("live database contains {} documents", live.len());
    assert_eq!(live.len(), 600); // 500 - 1 deleted + 100 new + key 999

    // Restoring from the backup is just replaying it into a fresh tree.
    let mut restored = TsbOptions::in_memory()
        .config(TsbConfig::default())
        .open_tree()?;
    for (key, value) in &backup {
        restored.insert(key.clone(), value.clone())?;
    }
    assert_eq!(
        restored.scan_current(&tsb_core::KeyRange::full())?.len(),
        backup.len()
    );
    println!(
        "restore into a fresh tree verified ({} documents)",
        backup.len()
    );

    store.verify()?;
    Ok(())
}
