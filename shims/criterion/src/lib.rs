//! Minimal API-compatible stand-in for the `criterion` crate.
//!
//! Implements benchmark groups, `bench_function` / `bench_with_input`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is a short warm-up followed by a fixed wall-clock budget of
//! timed iterations; the report prints the mean time per iteration (and
//! elements/second when a throughput is set). There is no statistical
//! analysis, plotting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget for the timed phase of one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Wall-clock budget for warm-up.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments, for `criterion_main!` parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, None, &mut f);
        self
    }

    /// Prints the closing line, for `criterion_main!` parity.
    pub fn final_summary(&mut self) {
        println!("\nbenchmarks complete");
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's sample count is its time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used to report elements/second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.into().label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {
        let _ = self.name;
    }
}

/// A benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Units processed per iteration, for elements/second reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How to batch inputs in [`Bencher::iter_batched`] (accepted for API
/// parity; the shim always runs one input per timed measurement).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
        }
        // Timed phase.
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < MEASURE_BUDGET {
            black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; the setup runs
    /// outside the timed region, so per-iteration state resets (cache
    /// drops, temp files) do not pollute the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine(setup()));
        }
        // Timed phase: only the routine is on the clock.
        let mut elapsed = Duration::ZERO;
        let mut iterations = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iterations += 1;
        }
        self.iterations = iterations;
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label:<40} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    let mut line = format!("{label:<40} {:>12}/iter", format_ns(per_iter));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Elements(n) => n as f64 / (per_iter / 1e9),
            Throughput::Bytes(n) => n as f64 / (per_iter / 1e9),
        };
        let unit = match tp {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        line.push_str(&format!("  {per_sec:>14.0} {unit}"));
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iterations > 0);
        assert!(b.elapsed >= MEASURE_BUDGET);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "p").label, "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("us"));
        assert!(format_ns(12_300_000.0).contains("ms"));
    }
}
