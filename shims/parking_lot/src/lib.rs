//! Minimal API-compatible stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, which is the
//! behavioural contract the workspace relies on (`lock()` returns a guard
//! directly, never a `Result`).

use std::fmt;
use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive. `lock` never returns a poison error: a
/// panic while holding the lock leaves the data accessible, as in the real
/// `parking_lot`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with non-poisoning guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
