//! Minimal API-compatible stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`boxed`, `any::<T>()`, `Just`, ranges, tuples, weighted
//! unions (`prop_oneof!`), `prop::collection::vec`, `prop::option::of`,
//! the `proptest!` test macro, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-case PRNG, so failures are
//! reproducible run to run. There is **no shrinking**: a failing case
//! reports its case index and panics with the assertion message.

pub mod strategy;
pub mod test_runner;

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// `Option` strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// The customary glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a, 1 => b]` picks
/// `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its inputs' case index) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs (attributes written
/// on the function, including `#[test]`, are passed through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
