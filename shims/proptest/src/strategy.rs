//! Value-generation strategies: the [`Strategy`] trait and the combinators
//! the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix strategy types in
    /// `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T` (`any::<u8>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Span arithmetic in u128 so full-width ranges (e.g.
                // `0u64..=u64::MAX`, span 2^64) never truncate to zero.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + ((rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as u128 - lo as u128 + 1;
                lo + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// The combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Weighted union over strategies of one value type (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(self.total_weight);
        for (w, strat) in &self.arms {
            if roll < *w as u64 {
                return strat.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("roll below total weight always lands in an arm")
    }
}

/// The size argument accepted by [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element` (mirrors `prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The strategy returned by [`option_of`].
pub struct OptionStrategy<S>(S);

/// Generates `None` half the time, `Some` of the inner strategy otherwise
/// (mirrors `prop::option::of`).
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_tuples_and_maps_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let (a, b) = (0u8..4, 10usize..=12).generate(&mut r);
            assert!(a < 4 && (10..=12).contains(&b));
            let doubled = (1u32..5).prop_map(|x| x * 2).generate(&mut r);
            assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
            let f = (0.5f64..1.5).generate(&mut r);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_panic() {
        let mut r = rng();
        let mut seen_high_bit = false;
        for _ in 0..64 {
            let v = (0u64..=u64::MAX).generate(&mut r);
            seen_high_bit |= v >= 1 << 63;
            let b = (0u8..=u8::MAX).generate(&mut r);
            let _ = b;
        }
        assert!(
            seen_high_bit,
            "full-width range never produced a high value"
        );
    }

    #[test]
    fn vec_and_option_and_union_cover_their_domains() {
        let mut r = rng();
        let mut saw_none = false;
        let mut saw_some = false;
        let mut arm_hits = [0u32; 2];
        for _ in 0..300 {
            let v = vec(any::<u8>(), 2..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
            match option_of(1u64..2).generate(&mut r) {
                None => saw_none = true,
                Some(1) => saw_some = true,
                Some(other) => panic!("out of range: {other}"),
            }
            let u = crate::prop_oneof![3 => Just(0usize), 1 => Just(1usize)].generate(&mut r);
            arm_hits[u] += 1;
        }
        assert!(saw_none && saw_some);
        assert!(arm_hits[0] > arm_hits[1], "weighting ignored: {arm_hits:?}");
    }
}
