//! Test-runner plumbing: per-case deterministic RNG, configuration, and the
//! case-failure error type used by the `prop_assert*` macros.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator, so every run generates the same
/// inputs. Built on the rand shim's splitmix64 [`StdRng`], seeded from the
/// test path and case index — one PRNG implementation across the shims,
/// mirroring how the real proptest builds on rand.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The generator for case `case` of the property named `test_path`.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let seed = h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ env_salt();
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Optional seed salt from `TSB_PROPTEST_SALT`: runs stay fully
/// deterministic for a given value, but CI can sweep several salts so
/// the property suites explore disjoint case streams (the stress-matrix
/// "seeds 1-3" pattern). Unset or unparseable means salt 0 — identical
/// to the historical behavior.
fn env_salt() -> u64 {
    use std::sync::OnceLock;
    static SALT: OnceLock<u64> = OnceLock::new();
    *SALT.get_or_init(|| {
        std::env::var("TSB_PROPTEST_SALT")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .map(|s: u64| s.wrapping_mul(0xD134_2543_DE82_EF95))
            .unwrap_or(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case_and_distinct_across_cases() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("mod::test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
