//! Minimal API-compatible stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides `Rng::{gen_range, gen_bool}` over half-open and inclusive
//! integer ranges plus half-open float ranges, and a deterministic
//! `StdRng::seed_from_u64`. The generator is splitmix64 — statistically fine
//! for workload generation, deliberately simple and seed-stable so every
//! experiment is reproducible.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = a.gen_range(5..50);
            assert_eq!(x, b.gen_range(5..50));
            assert!((5..50).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let f: f64 = c.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&f));
        let i: usize = c.gen_range(3..=3);
        assert_eq!(i, 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
