//! Proof that the warm descent is allocation-free.
//!
//! This binary installs a counting `GlobalAlloc` (wrapping the system
//! allocator) and asserts that a warm `get_current` over small (inline)
//! keys performs **zero** heap allocations end to end: the root latch, the
//! node-cache hits on every level, the binary-search routing inside index
//! nodes, and the `(key, version-order)` probes inside the leaf all work on
//! borrowed or inline data. Before this PR the same path allocated on
//! every index-node scan probe (`Key` was always heap-backed) and on every
//! leaf binary-search probe (`sort_key()` cloned the entry key).
//!
//! The test lives in its own integration-test binary so the global
//! allocator hook does not interfere with any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use tsb_common::{Key, Timestamp, TsbConfig};
use tsb_core::TsbTree;

/// Counts allocations while `COUNTING` is set; delegates to [`System`].
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counting statics are process-global, but libtest runs `#[test]`
/// fns on parallel threads — another test's allocations (tree building!)
/// must not leak into a measured window. Every test in this binary holds
/// this lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` with allocation counting on, returning (allocations, bytes).
fn count_allocations(f: impl FnOnce()) -> (u64, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ALLOCATED_BYTES.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    (
        ALLOCATIONS.load(Ordering::SeqCst),
        ALLOCATED_BYTES.load(Ordering::SeqCst),
    )
}

/// Builds a multi-level tree of 8-byte keys whose values are empty, so the
/// `Option<Vec<u8>>` a lookup returns never needs a backing allocation.
fn build_tree(keys: u64) -> TsbTree {
    let cfg = TsbConfig::small_pages().with_node_cache_entries(4096);
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(cfg)
        .open_tree()
        .unwrap();
    for _round in 0..4 {
        for k in 0..keys {
            tree.insert(k, Vec::new()).unwrap();
        }
    }
    tree
}

#[test]
fn warm_small_key_get_current_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let keys = 200u64;
    let tree = build_tree(keys);
    // The tree must actually have grown an index level for the claim to
    // mean anything.
    let path = tree.lookup_path(&Key::from_u64(0), Timestamp::MAX).unwrap();
    assert!(path.len() >= 2, "tree did not grow an index level");

    // Probe keys are built outside the measured section (Key::from_u64 is
    // allocation-free anyway, but the claim under test is the descent).
    let probes: Vec<Key> = (0..keys).map(Key::from_u64).collect();
    assert!(probes.iter().all(Key::is_inline));

    // Warm every current root-to-leaf path.
    for key in &probes {
        assert!(tree.get_current(key).unwrap().is_some());
    }

    let before = tree.io_stats().snapshot();
    let (allocs, bytes) = count_allocations(|| {
        for key in &probes {
            assert!(tree.get_current(key).unwrap().is_some());
        }
    });
    let delta = tree.io_stats().snapshot().delta_since(&before);

    // The sweep really was warm (pure cache hits, no decodes) …
    assert_eq!(delta.node_cache_misses, 0, "sweep was not warm");
    assert_eq!(delta.node_decodes, 0, "sweep was not warm");
    // … and it did not touch the heap at all.
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "warm get_current over {keys} small keys must not allocate"
    );
}

#[test]
fn warm_missing_key_lookup_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tree = build_tree(150);
    let absent = Key::from_u64(5_000_000);
    // Warm the path the absent key routes through.
    assert!(tree.get_current(&absent).unwrap().is_none());
    let (allocs, bytes) = count_allocations(|| {
        for _ in 0..64 {
            assert!(tree.get_current(&absent).unwrap().is_none());
        }
    });
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "missing-key lookups must not allocate"
    );
}
