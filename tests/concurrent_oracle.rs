//! Multi-threaded oracle-equivalence stress suite for [`ConcurrentTsb`].
//!
//! N reader threads replay deterministic query plans
//! ([`tsb_workload::ConcurrentSpec`]) at timestamps pinned to the engine's
//! install fence while one writer replays a scripted insert/update/delete
//! stream. Every reader answer must equal what the single-threaded
//! [`Oracle`] says for that exact timestamp — that is the operational
//! meaning of "reads are stable at or below the last fully-installed
//! write". The publication protocol makes the comparison sound:
//!
//! 1. the writer applies an op to the engine (which advances the engine's
//!    own fence),
//! 2. appends it to the shared oracle under a write lock,
//! 3. and only then advances the test-side `published` watermark.
//!
//! Readers pin every query at or below `published`, so the oracle is
//! guaranteed to contain everything the query can observe; versions
//! appended later carry strictly larger timestamps and cannot change an
//! answer pinned in the past.
//!
//! The default-sized tests run in every CI pass. The `#[ignore]`d variants
//! are the high-iteration stress runs executed by the CI stress job
//! (`cargo test --release -- --ignored`) across a fixed seed matrix via
//! `TSB_STRESS_SEED`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;

use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbConfig};
use tsb_core::ConcurrentTsb;
use tsb_workload::concurrent::stress_spec;
use tsb_workload::{pin_fraction, Op, Oracle, ReaderQueryKind};

/// Seed for the deterministic default runs; the stress job overrides it
/// per matrix entry via `TSB_STRESS_SEED`.
fn stress_seed() -> u64 {
    std::env::var("TSB_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C_0B01)
}

fn small_engine() -> ConcurrentTsb {
    tsb_core::TsbOptions::in_memory()
        .config(TsbConfig::small_pages())
        .open_concurrent()
        .unwrap()
}

/// The harness shared between the writer and the readers.
struct Shared {
    db: ConcurrentTsb,
    oracle: RwLock<Oracle>,
    /// Largest timestamp the oracle is guaranteed to contain.
    published: AtomicU64,
}

fn run_stress(ops: usize, keys: u64, readers: usize, queries_per_reader: usize, seed: u64) {
    let spec = stress_spec(ops, keys, seed);
    let writer_ops = spec.writer_ops();
    let shared = Arc::new(Shared {
        db: small_engine(),
        oracle: RwLock::new(Oracle::new()),
        published: AtomicU64::new(0),
    });

    thread::scope(|s| {
        {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                for op in &writer_ops {
                    let (key, ts, value) = match op {
                        Op::Put { key, value } => {
                            let ts = shared.db.insert(key.clone(), value.clone()).unwrap();
                            (key.clone(), ts, Some(value.clone()))
                        }
                        Op::Delete { key } => {
                            let ts = shared.db.delete(key.clone()).unwrap();
                            (key.clone(), ts, None)
                        }
                    };
                    shared.oracle.write().unwrap().apply_put(key, ts, value);
                    shared.published.fetch_max(ts.value(), Ordering::Release);
                }
            });
        }

        for reader_idx in 0..readers {
            let shared = Arc::clone(&shared);
            let plan = spec.reader_plan(reader_idx);
            s.spawn(move || {
                let mut executed = 0usize;
                let mut i = 0usize;
                while executed < queries_per_reader {
                    let q = &plan[i % plan.len()];
                    i += 1;
                    let published = shared.published.load(Ordering::Acquire);
                    if published == 0 {
                        thread::yield_now();
                        continue;
                    }
                    executed += 1;
                    let ts = Timestamp(pin_fraction(q.ts_fraction, published));
                    check_query(&shared, &q.kind, ts, reader_idx, executed);
                }
            });
        }
    });

    // Quiescent epilogue: structure intact, cache coherent, and the final
    // state equals the oracle everywhere.
    shared.db.verify().unwrap();
    shared.db.verify_cache_coherence().unwrap();
    let oracle = shared.oracle.read().unwrap();
    let fence = shared.db.last_installed();
    assert_eq!(
        shared.db.snapshot_at(fence).unwrap(),
        oracle.snapshot_at(fence),
        "final snapshot diverges from the oracle"
    );
}

fn check_query(shared: &Shared, kind: &ReaderQueryKind, ts: Timestamp, reader: usize, n: usize) {
    match kind {
        ReaderQueryKind::PointAsOf(key) => {
            let got = shared.db.get_as_of(key, ts).unwrap();
            let want = shared.oracle.read().unwrap().get_as_of(key, ts);
            assert_eq!(
                got, want,
                "reader {reader} query {n}: get_as_of({key}, {ts}) diverged"
            );
        }
        ReaderQueryKind::RangeAsOf(range) => {
            let got = shared.db.scan_as_of(range, ts).unwrap();
            let want = shared.oracle.read().unwrap().scan_as_of(range, ts);
            assert_eq!(
                got, want,
                "reader {reader} query {n}: scan_as_of({range:?}, {ts}) diverged"
            );
        }
        ReaderQueryKind::HistoryTo(key) => {
            let got: Vec<(Timestamp, Option<Vec<u8>>)> = shared
                .db
                .history_between(key, TimeRange::bounded(Timestamp::ZERO, ts.next()))
                .unwrap()
                .into_iter()
                .map(|v| (v.commit_time().unwrap(), v.value))
                .collect();
            let want: Vec<(Timestamp, Option<Vec<u8>>)> = shared
                .oracle
                .read()
                .unwrap()
                .versions(key)
                .into_iter()
                .filter(|(t, _)| *t <= ts)
                .collect();
            assert_eq!(
                got, want,
                "reader {reader} query {n}: history_between({key}, ..{ts}) diverged"
            );
        }
        ReaderQueryKind::CountAsOf(range) => {
            let got = shared.db.count_as_of(range, ts).unwrap();
            let want = shared.oracle.read().unwrap().count_as_of(range, ts);
            assert_eq!(
                got, want,
                "reader {reader} query {n}: count_as_of({range:?}, {ts}) diverged"
            );
        }
    }
}

/// The CI-sized stress run: 4 readers × 300 oracle-checked queries against
/// a 2.5k-op writer forcing splits and WORM migration.
#[test]
fn concurrent_readers_match_the_oracle() {
    run_stress(2_500, 48, 4, 300, stress_seed());
}

/// A second deterministic seed, so one CI pass already covers two distinct
/// interleavings of splits and reads.
#[test]
fn concurrent_readers_match_the_oracle_alt_seed() {
    run_stress(2_000, 32, 3, 250, stress_seed() ^ 0xA5A5_A5A5);
}

/// High-iteration variant for the CI stress job (`--ignored`, seed matrix
/// via `TSB_STRESS_SEED`).
#[test]
#[ignore = "high-iteration stress run; executed by the CI stress job"]
fn concurrent_readers_match_the_oracle_stress() {
    run_stress(12_000, 128, 8, 2_000, stress_seed());
}

/// Warm concurrent reads stay zero-decode: with the working set resident in
/// the decoded-node cache and no writer active, N threads hammering point
/// lookups must hit the (sharded, atomic-counted) cache on every node
/// access — the PR 1 counter assertions, extended to the concurrent engine.
#[test]
fn warm_concurrent_reads_perform_zero_decodes() {
    let cfg = TsbConfig::small_pages().with_node_cache_entries(4096);
    let db = tsb_core::TsbOptions::in_memory()
        .config(cfg)
        .open_concurrent()
        .unwrap();
    for i in 0..300u64 {
        db.insert(i % 30, format!("v{i}").into_bytes()).unwrap();
    }
    let fence = db.last_installed();
    // Warm every current path and every historical path the readers use.
    for key in 0..30u64 {
        db.get_current(&Key::from_u64(key)).unwrap();
        db.get_as_of(&Key::from_u64(key), fence).unwrap();
    }
    let before = db.io_stats().snapshot();
    thread::scope(|s| {
        for r in 0..4 {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..200u64 {
                    let key = Key::from_u64((r * 7 + i) % 30);
                    assert!(db.get_current(&key).unwrap().is_some());
                    assert!(db.get_as_of(&key, fence).unwrap().is_some());
                }
            });
        }
    });
    let delta = db.io_stats().snapshot().delta_since(&before);
    assert!(delta.node_cache_hits > 0, "warm reads must hit the cache");
    assert_eq!(delta.node_cache_misses, 0, "every node was already cached");
    assert_eq!(
        delta.node_decodes, 0,
        "warm concurrent reads decode nothing"
    );
    assert_eq!(delta.magnetic_reads, 0, "no device I/O on warm reads");
    db.verify_cache_coherence().unwrap();
}

/// Cache coherence after a full concurrent stress run: every cached node
/// equals its device image once the writer stops.
#[test]
fn cache_stays_coherent_under_concurrent_stress() {
    let spec = stress_spec(1_500, 40, stress_seed());
    let db = small_engine();
    thread::scope(|s| {
        {
            let db = db.clone();
            let ops = spec.writer_ops();
            s.spawn(move || {
                for op in &ops {
                    match op {
                        Op::Put { key, value } => {
                            db.insert(key.clone(), value.clone()).unwrap();
                        }
                        Op::Delete { key } => {
                            db.delete(key.clone()).unwrap();
                        }
                    }
                }
            });
        }
        for _ in 0..3 {
            let db = db.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    let ts = db.last_installed();
                    let _ = db.snapshot_at(ts).unwrap();
                    let _ = db
                        .scan_as_of(&KeyRange::full(), Timestamp(ts.value() / 2))
                        .unwrap();
                }
            });
        }
    });
    db.verify_cache_coherence().unwrap();
    db.verify().unwrap();
}
