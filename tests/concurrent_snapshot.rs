//! Property: snapshot stability under concurrent writes.
//!
//! A [`ConcurrentSnapshot`](tsb_core::ConcurrentSnapshot) pinned at the
//! install fence is a fixed point: dumped **before** a concurrent write
//! batch starts, **during** it (from another thread, while inserts,
//! updates, deletes, splits, and WORM migration are happening), and
//! **after** it finishes, it returns the identical version set every time.
//! The batches are arbitrary (proptest-generated) and include enough
//! writes to force node splits under `small_pages`, so the snapshot's
//! stability is exercised across genuine structural churn, not just leaf
//! rewrites.

use std::thread;

use proptest::prelude::*;

use tsb_common::{KeyRange, TsbConfig};
use tsb_core::ConcurrentTsb;

#[derive(Clone, Debug)]
enum BatchOp {
    Put { key: u8, len: u8 },
    Delete { key: u8 },
}

fn batch_strategy() -> impl Strategy<Value = Vec<BatchOp>> {
    prop::collection::vec(
        prop_oneof![
            5 => (any::<u8>(), any::<u8>()).prop_map(|(key, len)| BatchOp::Put {
                key: key % 24,
                len: len % 48,
            }),
            1 => any::<u8>().prop_map(|key| BatchOp::Delete { key: key % 24 }),
        ],
        20..300,
    )
}

fn apply(db: &ConcurrentTsb, op: &BatchOp) {
    match op {
        BatchOp::Put { key, len } => {
            db.insert(*key as u64, vec![b'x'; *len as usize]).unwrap();
        }
        BatchOp::Delete { key } => {
            db.delete(*key as u64).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshots_are_stable_before_during_and_after_concurrent_batches(
        seed_batch in batch_strategy(),
        concurrent_batch in batch_strategy(),
    ) {
        let db = tsb_core::TsbOptions::in_memory().config(TsbConfig::small_pages()).open_concurrent().unwrap();
        for op in &seed_batch {
            apply(&db, op);
        }

        let snap = db.begin_snapshot();
        let before = snap.dump().unwrap();
        let count_before = snap.count(&KeyRange::full()).unwrap();
        prop_assert_eq!(count_before, before.len());

        // Dump the pinned snapshot from another thread while the writer
        // races through an arbitrary batch.
        let during_dumps = thread::scope(|s| {
            let writer = {
                let db = db.clone();
                let batch = concurrent_batch.clone();
                s.spawn(move || {
                    for op in &batch {
                        apply(&db, op);
                    }
                })
            };
            let dumper = {
                let snap = snap.clone();
                s.spawn(move || {
                    let mut dumps = Vec::new();
                    for _ in 0..8 {
                        dumps.push(snap.dump().unwrap());
                        thread::yield_now();
                    }
                    dumps
                })
            };
            writer.join().unwrap();
            dumper.join().unwrap()
        });

        for (i, dump) in during_dumps.iter().enumerate() {
            prop_assert_eq!(
                dump, &before,
                "dump {} taken during the concurrent batch diverged", i
            );
        }

        // After the batch the snapshot still answers identically, even
        // though the live database may have moved arbitrarily far.
        let after = snap.dump().unwrap();
        prop_assert_eq!(&after, &before, "post-batch dump diverged");
        for (key, value) in &before {
            let got = snap.get(key).unwrap();
            prop_assert_eq!(
                got.as_ref(),
                Some(value),
                "pinned point read of {} diverged", key
            );
        }

        // Sanity: the snapshot was genuinely pinned in the past — the
        // install fence advanced past it by exactly the concurrent batch.
        let fresh = db.begin_snapshot();
        if concurrent_batch.is_empty() {
            prop_assert_eq!(fresh.timestamp(), snap.timestamp());
        } else {
            prop_assert!(fresh.timestamp() > snap.timestamp());
        }
        db.verify().unwrap();
        db.verify_cache_coherence().unwrap();
    }
}
