//! Executable reproductions of the paper's structural figures (F1–F9 in
//! DESIGN.md). The paper has no measured tables; its figures illustrate how
//! the structures behave on tiny scripted histories, and these tests pin
//! that behaviour.

use tsb_common::{
    Key, KeyRange, SplitPolicyKind, SplitTimeChoice, TimeRange, Timestamp, TsbConfig, Version,
};
use tsb_core::split::{
    choose_index_split_key, local_time_split_point, partition_by_key, partition_by_time,
    partition_index_by_key,
};
use tsb_core::{IndexEntry, IndexNode, NodeAddr};
use tsb_storage::{HistAddr, PageId};
use tsb_wobt::{Wobt, WobtConfig};

fn v(key: u64, ts: u64, name: &str) -> Version {
    Version::committed(key, Timestamp(ts), name.as_bytes().to_vec())
}

/// Figure 1: stepwise-constant data. "To find the balance of an account at a
/// given time T, we look at the last entry made before T."
#[test]
fn figure1_stepwise_constant_account_balance() {
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(TsbConfig::default())
        .open_tree()
        .unwrap();
    tree.insert_at("account", b"100".to_vec(), Timestamp(10))
        .unwrap();
    tree.insert_at("account", b"250".to_vec(), Timestamp(20))
        .unwrap();
    tree.insert_at("account", b"80".to_vec(), Timestamp(30))
        .unwrap();

    let key = Key::from("account");
    assert_eq!(tree.get_as_of(&key, Timestamp(9)).unwrap(), None);
    for t in 10..20 {
        assert_eq!(tree.get_as_of(&key, Timestamp(t)).unwrap().unwrap(), b"100");
    }
    for t in 20..30 {
        assert_eq!(tree.get_as_of(&key, Timestamp(t)).unwrap().unwrap(), b"250");
    }
    assert_eq!(tree.get_as_of(&key, Timestamp(99)).unwrap().unwrap(), b"80");
}

/// Figures 3 and 4: WOBT splits. A full WOBT node splits by key value and
/// current time (two new nodes holding only current versions, the old node
/// remains) or, when few current versions remain, by current time only (one
/// new node). In both cases the reorganization duplicates current data and
/// every incremental insert burns a whole sector.
#[test]
fn figures3_and_4_wobt_splits_duplicate_current_data() {
    // Key+time split: distinct keys force two (or more) new nodes.
    let mut wobt = Wobt::new_in_memory(WobtConfig::small()).unwrap();
    for i in 0..40u64 {
        wobt.insert(i, format!("record-{i}").into_bytes()).unwrap();
    }
    let stats = wobt.stats().unwrap();
    assert!(
        stats.data_nodes > 1,
        "key+time splits created new data nodes"
    );
    assert!(
        stats.redundant_copies > 0,
        "current versions were copied into the new nodes while the old nodes remain"
    );

    // Pure time split: repeated updates of few keys leave few current
    // versions, so splits copy only those and redundancy per split is small,
    // but the old versions still occupy their original sectors.
    let mut wobt = Wobt::new_in_memory(WobtConfig::small()).unwrap();
    for round in 0..40u64 {
        wobt.insert(7u64, format!("round-{round}").into_bytes())
            .unwrap();
    }
    let stats = wobt.stats().unwrap();
    assert_eq!(stats.distinct_versions, 40);
    assert!(stats.data_nodes > 1);
    // Every version remains readable as of its time.
    assert_eq!(
        wobt.get_as_of(&Key::from_u64(7), Timestamp(1))
            .unwrap()
            .unwrap(),
        b"round-0".to_vec()
    );
}

/// Figure 5: a TSB-tree data node holding only insertions is split purely by
/// key; nothing migrates and the new index entries carry the old entry's
/// timestamp (here: both halves keep the node's original time range).
#[test]
fn figure5_pure_key_split_for_insert_only_nodes() {
    let entries: Vec<Version> = vec![
        v(60, 1, "Joe"),
        v(70, 3, "Pete"),
        v(80, 1, "Mary"),
        v(90, 6, "Alice"),
    ];
    let (left, right) = partition_by_key(&entries, &Key::from_u64(80));
    assert_eq!(left.len(), 2);
    assert_eq!(right.len(), 2);
    // No entry was duplicated and nothing was designated historical.
    assert_eq!(left.len() + right.len(), entries.len());

    // End-to-end: an insert-only workload under the threshold policy never
    // touches the WORM store.
    let cfg = TsbConfig::small_pages().with_split_policy(SplitPolicyKind::default());
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(cfg)
        .open_tree()
        .unwrap();
    for i in 0..200u64 {
        tree.insert(i, format!("ins-{i}").into_bytes()).unwrap();
    }
    assert_eq!(
        tree.space().worm_bytes,
        0,
        "insert-only data never migrates"
    );
    tree.verify().unwrap();
}

/// Figure 6: the same node time-split at T=4 versus T=5. At T=4 there is no
/// redundancy; at T=5 the version valid at the split time ("Mary", T=4) is
/// copied into both the historical and the current node.
#[test]
fn figure6_split_time_choice_controls_redundancy() {
    let entries = vec![
        v(60, 1, "Joe"),
        v(60, 2, "Pete"),
        v(60, 4, "Mary"),
        v(90, 6, "Alice"),
    ];

    let at_4 = partition_by_time(&entries, Timestamp(4));
    assert_eq!(at_4.duplicated, 0, "T=4: no redundancy (Figure 6 top)");
    assert_eq!(at_4.historical.len(), 2);
    assert_eq!(at_4.current.len(), 2);

    let at_5 = partition_by_time(&entries, Timestamp(5));
    assert_eq!(
        at_5.duplicated, 1,
        "T=5: Mary is in both nodes (Figure 6 bottom)"
    );
    assert!(at_5
        .historical
        .iter()
        .any(|e| e.value == Some(b"Mary".to_vec())));
    assert!(at_5
        .current
        .iter()
        .any(|e| e.value == Some(b"Mary".to_vec())));
}

/// Figure 7: an index keyspace split must duplicate the (historical) entry
/// whose key range strictly contains the split value; entries on one side go
/// to one node only.
#[test]
fn figure7_index_keyspace_split_duplicates_straddling_historical_entries() {
    let full = KeyRange::full();
    let hist_wide = IndexEntry::new(
        KeyRange::new(Key::from_u64(50), tsb_common::KeyBound::PlusInfinity),
        TimeRange::bounded(Timestamp(0), Timestamp(7)),
        NodeAddr::Historical(HistAddr::new(0, 64)),
    );
    let node = IndexNode::from_entries(
        full,
        TimeRange::full(),
        vec![
            IndexEntry::new(
                KeyRange::new(Key::MIN, tsb_common::KeyBound::Finite(Key::from_u64(50))),
                TimeRange::bounded(Timestamp(0), Timestamp(8)),
                NodeAddr::Historical(HistAddr::new(64, 64)),
            ),
            hist_wide.clone(),
            IndexEntry::new(
                KeyRange::new(Key::MIN, tsb_common::KeyBound::Finite(Key::from_u64(50))),
                TimeRange::from(Timestamp(8)),
                NodeAddr::Current(PageId(1)),
            ),
            IndexEntry::new(
                KeyRange::bounded(Key::from_u64(50), Key::from_u64(100)),
                TimeRange::from(Timestamp(7)),
                NodeAddr::Current(PageId(2)),
            ),
            IndexEntry::new(
                KeyRange::new(Key::from_u64(100), tsb_common::KeyBound::PlusInfinity),
                TimeRange::from(Timestamp(7)),
                NodeAddr::Current(PageId(3)),
            ),
        ],
    );
    node.validate().unwrap();
    let split_key = choose_index_split_key(&node).unwrap();
    assert_eq!(split_key, Key::from_u64(100));
    let parts = partition_index_by_key(node.entries(), &split_key);
    assert_eq!(parts.duplicated, 1);
    let dup: Vec<_> = parts
        .left
        .iter()
        .filter(|e| parts.right.contains(e))
        .collect();
    assert_eq!(
        dup,
        vec![&hist_wide],
        "only the straddling historical entry is duplicated"
    );
}

/// Figures 8 and 9: an index node can be time split *locally* only when
/// there is a time before which every reference is historical; an old
/// current child blocks it.
#[test]
fn figures8_and_9_local_index_time_split_condition() {
    let hist = |off: u64, lo: u64, hi: u64| {
        IndexEntry::new(
            KeyRange::full(),
            TimeRange::bounded(Timestamp(lo), Timestamp(hi)),
            NodeAddr::Historical(HistAddr::new(off, 64)),
        )
    };
    // Figure 8: both current children start at T=4; everything before 4 is
    // historical, so a local time split at 4 is possible.
    let splittable = IndexNode::from_entries(
        KeyRange::full(),
        TimeRange::full(),
        vec![
            hist(0, 0, 4),
            IndexEntry::new(
                KeyRange::new(Key::MIN, tsb_common::KeyBound::Finite(Key::from_u64(50))),
                TimeRange::from(Timestamp(4)),
                NodeAddr::Current(PageId(1)),
            ),
            IndexEntry::new(
                KeyRange::new(Key::from_u64(50), tsb_common::KeyBound::PlusInfinity),
                TimeRange::from(Timestamp(4)),
                NodeAddr::Current(PageId(2)),
            ),
        ],
    );
    assert_eq!(local_time_split_point(&splittable), Some(Timestamp(4)));

    // Figure 9: one current child has never been time split (it still starts
    // at T=0), so no local time split exists.
    let blocked = IndexNode::from_entries(
        KeyRange::full(),
        TimeRange::full(),
        vec![
            hist(0, 0, 4),
            IndexEntry::new(
                KeyRange::new(Key::MIN, tsb_common::KeyBound::Finite(Key::from_u64(50))),
                TimeRange::from(Timestamp(4)),
                NodeAddr::Current(PageId(1)),
            ),
            IndexEntry::new(
                KeyRange::new(Key::from_u64(50), tsb_common::KeyBound::PlusInfinity),
                TimeRange::from(Timestamp(0)),
                NodeAddr::Current(PageId(2)),
            ),
        ],
    );
    assert_eq!(local_time_split_point(&blocked), None);
}

/// End-to-end check of the WOBT-vs-TSB contrast the figures build up to:
/// the same update-heavy history costs the WOBT far more WORM space than the
/// TSB-tree, whose consolidation before migration keeps sector utilization
/// high (§1, §2.6, §3.4).
#[test]
fn consolidation_beats_one_entry_per_sector() {
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(
            TsbConfig::small_pages()
                .with_split_policy(SplitPolicyKind::TimePreferring)
                .with_split_time_choice(SplitTimeChoice::CurrentTime),
        )
        .open_tree()
        .unwrap();
    let mut wobt = Wobt::new_in_memory(WobtConfig {
        sector_size: 64,
        node_sectors: 4,
        max_key_len: 16,
    })
    .unwrap();
    for i in 0..400u64 {
        let key = i % 20;
        let value = format!("v{i}").into_bytes();
        tree.insert(key, value.clone()).unwrap();
        wobt.insert(key, value).unwrap();
    }
    let tsb_util = tree.space().worm_utilization().unwrap_or(1.0);
    let wobt_util = wobt.stats().unwrap().utilization();
    assert!(
        tsb_util > wobt_util,
        "TSB consolidation ({tsb_util:.3}) must beat WOBT one-entry-per-sector ({wobt_util:.3})"
    );
    // And the WOBT's write-once-only operation created redundant copies of
    // current data at every reorganization (§2.6); the full space comparison
    // across policies is experiment E7/E8 in the bench harness.
    assert!(wobt.stats().unwrap().redundant_copies > 0);
}
