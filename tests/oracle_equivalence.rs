//! Cross-crate equivalence tests: the TSB-tree (under every splitting
//! policy) and the WOBT baseline must answer every temporal query exactly
//! like the in-memory oracle, for a variety of workload shapes.

use tsb_common::{SplitPolicyKind, SplitTimeChoice, TsbConfig};
use tsb_integration::{
    assert_tree_matches_oracle, assert_wobt_matches_oracle, replay, replay_into_wobt,
};
use tsb_wobt::{Wobt, WobtConfig};
use tsb_workload::{generate_ops, scenarios, KeyDistribution, Oracle, WorkloadSpec};

fn small_cfg(policy: SplitPolicyKind, choice: SplitTimeChoice) -> TsbConfig {
    TsbConfig::small_pages()
        .with_split_policy(policy)
        .with_split_time_choice(choice)
}

fn check_policy(policy: SplitPolicyKind, choice: SplitTimeChoice, spec: &WorkloadSpec) {
    let ops = generate_ops(spec);
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(small_cfg(policy, choice))
        .open_tree()
        .unwrap();
    let mut oracle = Oracle::new();
    let log = replay(&mut tree, &mut oracle, &ops);
    tree.verify()
        .unwrap_or_else(|e| panic!("{policy:?}/{choice:?}: {e}"));
    assert_tree_matches_oracle(&tree, &oracle, &log);
}

#[test]
fn every_policy_matches_the_oracle_on_a_mixed_workload() {
    let spec = WorkloadSpec::default()
        .with_ops(1_200)
        .with_keys(120)
        .with_update_ratio(3.0)
        .with_value_size(24);
    for policy in [
        SplitPolicyKind::WobtLike,
        SplitPolicyKind::TimePreferring,
        SplitPolicyKind::KeyPreferring,
        SplitPolicyKind::KeyOnly,
        SplitPolicyKind::CostBased,
        SplitPolicyKind::Threshold {
            key_split_live_fraction: 0.6,
        },
    ] {
        check_policy(policy, SplitTimeChoice::LastUpdate, &spec);
    }
}

#[test]
fn every_split_time_choice_matches_the_oracle() {
    let spec = WorkloadSpec::default()
        .with_ops(1_000)
        .with_keys(80)
        .with_update_ratio(6.0)
        .with_value_size(20);
    for choice in [
        SplitTimeChoice::CurrentTime,
        SplitTimeChoice::LastUpdate,
        SplitTimeChoice::MedianVersion,
    ] {
        check_policy(SplitPolicyKind::TimePreferring, choice, &spec);
    }
}

#[test]
fn insert_only_and_delete_heavy_workloads_match_the_oracle() {
    // Insert-only: the boundary condition where only key splits make sense.
    let insert_only = WorkloadSpec::default()
        .with_ops(900)
        .with_keys(900)
        .with_update_ratio(0.0)
        .with_value_size(16);
    check_policy(
        SplitPolicyKind::default(),
        SplitTimeChoice::LastUpdate,
        &insert_only,
    );

    // Delete-heavy: tombstones flow through splits and snapshots.
    let deletes = WorkloadSpec {
        delete_fraction: 0.2,
        ..WorkloadSpec::default()
            .with_ops(800)
            .with_keys(100)
            .with_update_ratio(2.0)
            .with_value_size(16)
    };
    check_policy(
        SplitPolicyKind::TimePreferring,
        SplitTimeChoice::LastUpdate,
        &deletes,
    );
}

#[test]
fn skewed_distributions_match_the_oracle() {
    for distribution in [
        KeyDistribution::Zipfian { theta: 0.9 },
        KeyDistribution::Hotspot {
            hot_fraction: 0.1,
            hot_probability: 0.9,
        },
        KeyDistribution::Sequential,
    ] {
        let spec = WorkloadSpec::default()
            .with_ops(800)
            .with_keys(60)
            .with_update_ratio(5.0)
            .with_value_size(20)
            .with_distribution(distribution);
        check_policy(
            SplitPolicyKind::default(),
            SplitTimeChoice::LastUpdate,
            &spec,
        );
    }
}

#[test]
fn named_scenarios_match_the_oracle() {
    // The named scenarios carry larger payloads (up to 400 bytes), so they
    // run against 1 KiB pages rather than the tiny test pages.
    for spec in [
        scenarios::bank_ledger(40, 800, 11),
        scenarios::personnel(150, 700, 12),
        scenarios::engineering_versions(10, 300, 13),
    ] {
        let mut cfg = TsbConfig::default()
            .with_page_size(1024)
            .with_worm_sector_size(256)
            .with_split_policy(SplitPolicyKind::default())
            .with_split_time_choice(SplitTimeChoice::LastUpdate);
        cfg.max_key_len = 64;
        let ops = generate_ops(&spec);
        let mut tree = tsb_core::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        let mut oracle = Oracle::new();
        let log = replay(&mut tree, &mut oracle, &ops);
        tree.verify().unwrap();
        assert_tree_matches_oracle(&tree, &oracle, &log);
    }
}

#[test]
fn wobt_baseline_matches_the_oracle_on_the_same_history() {
    let spec = WorkloadSpec::default()
        .with_ops(800)
        .with_keys(80)
        .with_update_ratio(4.0)
        .with_value_size(20);
    let ops = generate_ops(&spec);

    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(small_cfg(
            SplitPolicyKind::default(),
            SplitTimeChoice::LastUpdate,
        ))
        .open_tree()
        .unwrap();
    let mut oracle = Oracle::new();
    let log = replay(&mut tree, &mut oracle, &ops);

    let mut wobt = Wobt::new_in_memory(WobtConfig::small()).unwrap();
    replay_into_wobt(&mut wobt, &log);

    assert_tree_matches_oracle(&tree, &oracle, &log);
    assert_wobt_matches_oracle(&wobt, &oracle, &log);

    // Both structures also agree with each other on snapshots at recorded times.
    let times = oracle.all_timestamps();
    let mid = times[times.len() / 2];
    assert_eq!(
        tree.snapshot_at(mid).unwrap(),
        wobt.snapshot_at(mid).unwrap()
    );
    assert_eq!(
        tree.snapshot_at(tsb_common::Timestamp::MAX).unwrap(),
        wobt.snapshot_at(tsb_common::Timestamp::MAX).unwrap()
    );
}

#[test]
fn larger_pages_and_default_config_also_match() {
    // The default (4 KiB pages) configuration on a bigger workload.
    let spec = WorkloadSpec::default()
        .with_ops(3_000)
        .with_keys(300)
        .with_update_ratio(4.0)
        .with_value_size(100);
    let ops = generate_ops(&spec);
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(TsbConfig::default())
        .open_tree()
        .unwrap();
    let mut oracle = Oracle::new();
    let log = replay(&mut tree, &mut oracle, &ops);
    tree.verify().unwrap();
    assert_tree_matches_oracle(&tree, &oracle, &log);
    let stats = tree.tree_stats().unwrap();
    assert_eq!(stats.distinct_versions, 3_000);
}
