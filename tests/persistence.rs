//! Durability: the tree built over file-backed stores survives a close and
//! reopen with its history, its clock, and the write-once property intact.

use std::path::PathBuf;
use std::sync::Arc;

use tsb_common::{Key, SplitPolicyKind, TsbConfig};
use tsb_core::TsbTree;
use tsb_storage::{IoStats, MagneticStore, SectorId, WormStore};
use tsb_workload::{generate_ops, Oracle, WorkloadSpec};

use tsb_integration::{assert_tree_matches_oracle, replay};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-it-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_stores(dir: &TempDir, cfg: &TsbConfig) -> (Arc<MagneticStore>, Arc<WormStore>) {
    let stats = Arc::new(IoStats::new());
    let magnetic = Arc::new(
        MagneticStore::open_file(dir.path("current.pages"), cfg.page_size, Arc::clone(&stats))
            .unwrap(),
    );
    let worm = Arc::new(
        WormStore::open_file(dir.path("history.worm"), cfg.worm_sector_size, stats).unwrap(),
    );
    (magnetic, worm)
}

#[test]
fn tree_survives_close_and_reopen_with_full_history() {
    let dir = TempDir::new("reopen");
    let cfg = TsbConfig::small_pages().with_split_policy(SplitPolicyKind::TimePreferring);

    let spec = WorkloadSpec::default()
        .with_ops(600)
        .with_keys(60)
        .with_update_ratio(4.0)
        .with_value_size(24);
    let ops = generate_ops(&spec);
    let mut oracle = Oracle::new();
    let log;
    let clock_before;
    {
        let (magnetic, worm) = open_stores(&dir, &cfg);
        let mut tree = TsbTree::create(magnetic, worm, cfg.clone()).unwrap();
        log = replay(&mut tree, &mut oracle, &ops);
        tree.verify().unwrap();
        clock_before = tree.now();
        tree.flush().unwrap();
    }
    {
        let (magnetic, worm) = open_stores(&dir, &cfg);
        let tree = TsbTree::open(magnetic, worm, cfg.clone()).unwrap();
        assert!(tree.now() >= clock_before, "clock must not run backwards");
        tree.verify().unwrap();
        assert_tree_matches_oracle(&tree, &oracle, &log);
    }
    // A third session keeps writing and the history stays consistent.
    {
        let (magnetic, worm) = open_stores(&dir, &cfg);
        let mut tree = TsbTree::open(magnetic, worm, cfg.clone()).unwrap();
        let more = generate_ops(&spec.clone().with_seed(99).with_ops(200));
        let more_log = replay(&mut tree, &mut oracle, &more);
        tree.verify().unwrap();
        assert_tree_matches_oracle(&tree, &oracle, &more_log);
        // The versions written in the first session are still there too.
        for (key, ts, value) in &log {
            assert_eq!(&tree.get_as_of(key, *ts).unwrap(), value);
        }
        tree.flush().unwrap();
    }
}

#[test]
fn historical_store_stays_write_once_across_sessions() {
    let dir = TempDir::new("worm");
    let cfg = TsbConfig::small_pages().with_split_policy(SplitPolicyKind::TimePreferring);
    {
        let (magnetic, worm) = open_stores(&dir, &cfg);
        let mut tree = TsbTree::create(magnetic, worm, cfg.clone()).unwrap();
        for i in 0..300u64 {
            tree.insert(i % 10, format!("v{i}").into_bytes()).unwrap();
        }
        tree.flush().unwrap();
        assert!(
            tree.space().worm_bytes > 0,
            "time splits must have migrated data"
        );
    }
    {
        let (_magnetic, worm) = open_stores(&dir, &cfg);
        // Every already-burned sector refuses to be rewritten after reopen.
        assert!(worm.sectors_allocated() > 0);
        for s in 0..worm.sectors_allocated() {
            if worm.is_sector_written(SectorId(s)) {
                assert!(worm
                    .write_sector(SectorId(s), b"overwrite attempt")
                    .is_err());
            }
        }
    }
}

#[test]
fn reopening_with_a_different_page_size_is_rejected() {
    let dir = TempDir::new("pagesize");
    let cfg = TsbConfig::small_pages();
    {
        let (magnetic, worm) = open_stores(&dir, &cfg);
        let mut tree = TsbTree::create(magnetic, worm, cfg.clone()).unwrap();
        tree.insert(Key::from_u64(1), b"x".to_vec()).unwrap();
        tree.flush().unwrap();
    }
    {
        let stats = Arc::new(IoStats::new());
        // The store itself refuses to open with a mismatched page size.
        assert!(MagneticStore::open_file(dir.path("current.pages"), 4096, stats).is_err());
    }
}
