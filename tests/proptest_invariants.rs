//! Property-based tests over the core invariants:
//!
//! * **Oracle equivalence**: for arbitrary operation sequences and arbitrary
//!   policy configurations, the TSB-tree answers every point/as-of/current
//!   query exactly like the reference multiversion map, and the structural
//!   verifier passes after every batch.
//! * **Time-split rule**: for arbitrary version multisets and split times,
//!   the partition loses nothing, puts strictly-older versions in the
//!   historical half, and always carries the version valid at the split time
//!   into the current half.
//! * **Index keyspace split rule**: partitions preserve every entry,
//!   duplicate only straddling entries, and route every key to exactly one
//!   side.
//! * **Composite-key encoding** (secondary indexes): order-preserving and
//!   loss-free.

use proptest::prelude::*;

use tsb_common::{Key, SplitPolicyKind, SplitTimeChoice, Timestamp, TsbConfig, Version};
use tsb_core::split::{partition_by_key, partition_by_time};
use tsb_core::{composite_key, split_composite_key};
use tsb_workload::Oracle;

// ---------- generators -------------------------------------------------------

#[derive(Clone, Debug)]
enum PropOp {
    Put { key: u8, len: u8 },
    Delete { key: u8 },
}

fn op_strategy() -> impl Strategy<Value = PropOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(key, len)| PropOp::Put { key: key % 32, len }),
        1 => any::<u8>().prop_map(|key| PropOp::Delete { key: key % 32 }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = (SplitPolicyKind, SplitTimeChoice)> {
    let policy = prop_oneof![
        Just(SplitPolicyKind::WobtLike),
        Just(SplitPolicyKind::TimePreferring),
        Just(SplitPolicyKind::KeyPreferring),
        Just(SplitPolicyKind::KeyOnly),
        Just(SplitPolicyKind::CostBased),
        (0.1f64..0.95).prop_map(|f| SplitPolicyKind::Threshold {
            key_split_live_fraction: f,
        }),
    ];
    let choice = prop_oneof![
        Just(SplitTimeChoice::CurrentTime),
        Just(SplitTimeChoice::LastUpdate),
        Just(SplitTimeChoice::MedianVersion),
    ];
    (policy, choice)
}

fn version_strategy() -> impl Strategy<Value = Version> {
    (
        0u64..16,
        1u64..64,
        prop::option::of(prop::collection::vec(any::<u8>(), 0..12)),
    )
        .prop_map(|(key, ts, value)| Version {
            key: Key::from_u64(key),
            state: tsb_common::TsState::Committed(Timestamp(ts)),
            value,
        })
}

fn sorted_versions(mut v: Vec<Version>) -> Vec<Version> {
    v.sort_by(Version::sort_cmp);
    v.dedup_by(|a, b| a.sort_key() == b.sort_key());
    v
}

// ---------- properties -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary operation sequences under arbitrary policies behave exactly
    /// like the in-memory oracle, and the structure verifies throughout.
    #[test]
    fn tree_matches_oracle_for_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(), 1..250),
        (policy, choice) in policy_strategy(),
    ) {
        let cfg = TsbConfig::small_pages()
            .with_split_policy(policy)
            .with_split_time_choice(choice);
        let mut tree = tsb_core::TsbOptions::in_memory().config(cfg).open_tree().unwrap();
        let mut oracle = Oracle::new();
        let mut log = Vec::new();
        for op in &ops {
            match op {
                PropOp::Put { key, len } => {
                    let value = vec![*key; (*len % 24) as usize];
                    let ts = tree.insert(Key::from_u64(*key as u64), value.clone()).unwrap();
                    oracle.put(*key as u64, ts, value.clone());
                    log.push((Key::from_u64(*key as u64), ts, Some(value)));
                }
                PropOp::Delete { key } => {
                    let ts = tree.delete(Key::from_u64(*key as u64)).unwrap();
                    oracle.delete(*key as u64, ts);
                    log.push((Key::from_u64(*key as u64), ts, None));
                }
            }
        }
        tree.verify().unwrap();
        // As-of reads at every recorded commit time.
        for (key, ts, value) in &log {
            prop_assert_eq!(&tree.get_as_of(key, *ts).unwrap(), value);
        }
        // Current reads and histories for every key.
        for key in oracle.keys() {
            prop_assert_eq!(tree.get_current(key).unwrap(), oracle.get_current(key));
            let got: Vec<Timestamp> = tree
                .versions(key).unwrap()
                .iter()
                .map(|v| v.commit_time().unwrap())
                .collect();
            let expected: Vec<Timestamp> = oracle.versions(key).iter().map(|(t, _)| *t).collect();
            prop_assert_eq!(got, expected);
        }
        // A snapshot at the median commit time.
        let times = oracle.all_timestamps();
        if !times.is_empty() {
            let mid = times[times.len() / 2];
            prop_assert_eq!(tree.snapshot_at(mid).unwrap(), oracle.snapshot_at(mid));
        }
    }

    /// The TIME-SPLIT RULE: nothing is lost, the historical half holds
    /// exactly the strictly-older versions, and for every key alive at the
    /// split time the governing version is present in the current half.
    #[test]
    fn time_split_rule_properties(
        versions in prop::collection::vec(version_strategy(), 1..40),
        split in 1u64..80,
    ) {
        let entries = sorted_versions(versions);
        let split_time = Timestamp(split);
        let parts = partition_by_time(&entries, split_time);

        // Nothing lost.
        for e in &entries {
            prop_assert!(parts.historical.contains(e) || parts.current.contains(e));
        }
        // Historical = strictly older.
        for e in &parts.historical {
            prop_assert!(e.commit_time().unwrap() < split_time);
        }
        // The version valid at the split time is in the current half (unless
        // it is a tombstone, which may be elided).
        let mut keys: Vec<Key> = entries.iter().map(|e| e.key.clone()).collect();
        keys.dedup();
        for key in keys {
            let governing = entries
                .iter()
                .rfind(|e| e.key == key && e.commit_time().unwrap() <= split_time);
            if let Some(g) = governing {
                if !g.is_tombstone() {
                    prop_assert!(
                        parts.current.contains(g),
                        "version valid at the split time must be in the current node"
                    );
                }
            }
        }
        // Redundancy accounting is exact.
        let both = parts
            .historical
            .iter()
            .filter(|e| parts.current.contains(e))
            .count();
        prop_assert_eq!(both, parts.duplicated);
    }

    /// Key splits partition by key with no loss and no duplication.
    #[test]
    fn key_split_partitions_cleanly(
        versions in prop::collection::vec(version_strategy(), 1..40),
        split_key in 0u64..16,
    ) {
        let entries = sorted_versions(versions);
        let split = Key::from_u64(split_key);
        let (left, right) = partition_by_key(&entries, &split);
        prop_assert_eq!(left.len() + right.len(), entries.len());
        prop_assert!(left.iter().all(|e| e.key < split));
        prop_assert!(right.iter().all(|e| e.key >= split));
    }

    /// The decoded-node cache is coherent: after arbitrary operation
    /// sequences (with splits and interleaved invalidations), every cached
    /// node equals what decoding its device image produces, cache-bypassing
    /// reads return the same answers as cached reads, and re-running the
    /// same warm queries performs zero decodes.
    #[test]
    fn node_cache_is_coherent_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(), 1..200),
        (policy, choice) in policy_strategy(),
        invalidate_every in 5usize..40,
    ) {
        let cfg = TsbConfig::small_pages()
            .with_split_policy(policy)
            .with_split_time_choice(choice)
            .with_node_cache_entries(4096);
        let mut tree = tsb_core::TsbOptions::in_memory().config(cfg).open_tree().unwrap();
        for (i, op) in ops.iter().enumerate() {
            match op {
                PropOp::Put { key, len } => {
                    let value = vec![*key; (*len % 24) as usize];
                    tree.insert(Key::from_u64(*key as u64), value).unwrap();
                }
                PropOp::Delete { key } => {
                    tree.delete(Key::from_u64(*key as u64)).unwrap();
                }
            }
            // Sprinkle invalidations through the stream: they must never
            // change any answer, only force re-decodes.
            if i % invalidate_every == invalidate_every - 1 {
                tree.invalidate_cached_node(tree.root_addr()).unwrap();
            }
        }
        // Every reachable cached node equals its decoded device image.
        tree.verify_cache_coherence().unwrap();

        // Answers through the warm cache...
        let cached_answers: Vec<_> = (0..32u64)
            .map(|key| tree.get_current(&Key::from_u64(key)).unwrap())
            .collect();
        // ...survive a full cold start (bypass: everything re-decoded).
        tree.drop_caches().unwrap();
        for (key, expected) in (0..32u64).zip(&cached_answers) {
            prop_assert_eq!(&tree.get_current(&Key::from_u64(key)).unwrap(), expected);
        }
        // And the now-warm paths decode nothing on a repeat pass.
        let before = tree.io_stats().snapshot();
        for key in 0..32u64 {
            tree.get_current(&Key::from_u64(key)).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        prop_assert_eq!(delta.node_decodes, 0);
        prop_assert_eq!(delta.node_cache_misses, 0);
        prop_assert!(delta.node_cache_hits > 0);
    }

    /// The composite (secondary, primary) encoding is loss-free and
    /// order-preserving — the property the secondary index relies on for its
    /// prefix scans.
    #[test]
    fn composite_key_encoding_round_trips_and_preserves_order(
        pairs in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..12), prop::collection::vec(any::<u8>(), 0..12)),
            1..30
        ),
    ) {
        let mut tuples: Vec<(Key, Key)> = pairs
            .into_iter()
            .map(|(s, p)| (Key::from_bytes(s), Key::from_bytes(p)))
            .collect();
        for (s, p) in &tuples {
            let c = composite_key(s, p);
            let (s2, p2) = split_composite_key(&c).unwrap();
            prop_assert_eq!(&s2, s);
            prop_assert_eq!(&p2, p);
        }
        // Order preservation: sorting by tuple equals sorting by encoding.
        let mut by_encoding: Vec<(Key, Key)> = tuples.clone();
        by_encoding.sort_by_key(|(s, p)| composite_key(s, p));
        tuples.sort();
        prop_assert_eq!(by_encoding, tuples);
    }
}

// ---------- partitioned index routing ---------------------------------------
//
// `IndexNode::find_child` routes descents through a two-region layout
// (historical entries binary-searched by `(key, ts)`, current entries by
// key). The property: on *arbitrary valid* index nodes — generated as
// arbitrary rectangle tilings of the key x time plane, optionally put
// through a real index keyspace split so historical entries straddle the
// node's key range — the partitioned routing agrees with the linear
// reference scan at every probe point, including entry boundary corners,
// past timestamps, and `Timestamp::MAX`.

/// Builds a valid index node by recursively splitting the full rectangle.
/// Each instruction `(which, at, dim)` picks a rectangle and bisects it at a
/// key or time point strictly inside it (no-op when the point falls on or
/// outside the boundary).
fn tiling_node(splits: &[(u16, u16, u8)]) -> tsb_core::IndexNode {
    use tsb_common::{KeyRange, TimeBound, TimeRange};
    let mut rects: Vec<(KeyRange, TimeRange)> = vec![(KeyRange::full(), TimeRange::full())];
    for (which, at, dim) in splits {
        let idx = *which as usize % rects.len();
        let (kr, tr) = rects[idx].clone();
        if dim % 2 == 0 {
            let split = Key::from_u64(u64::from(at % 1000) + 1);
            if let Some((left, right)) = kr.split_at(&split) {
                rects[idx] = (left, tr);
                rects.push((right, tr));
            }
        } else {
            let t = Timestamp(u64::from(at % 1000) + 1);
            let strictly_inside = tr.lo < t
                && match tr.hi {
                    TimeBound::Finite(h) => t < h,
                    TimeBound::Infinity => true,
                };
            if strictly_inside {
                rects[idx] = (kr.clone(), TimeRange::new(tr.lo, TimeBound::Finite(t)));
                rects.push((kr, TimeRange::new(t, tr.hi)));
            }
        }
    }
    let entries: Vec<tsb_core::IndexEntry> = rects
        .into_iter()
        .enumerate()
        .map(|(i, (kr, tr))| {
            let addr = if tr.is_current() {
                tsb_core::NodeAddr::Current(tsb_storage::PageId(i as u64 + 1))
            } else {
                tsb_core::NodeAddr::Historical(tsb_storage::HistAddr::new(i as u64 * 128, 64))
            };
            tsb_core::IndexEntry::new(kr, tr, addr)
        })
        .collect();
    tsb_core::IndexNode::from_entries(KeyRange::full(), TimeRange::full(), entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitioned_find_child_agrees_with_linear_scan(
        splits in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 0..48),
        keyspace_split in (any::<u8>(), any::<u8>()),
        probes in prop::collection::vec((any::<u16>(), any::<u16>()), 0..64),
    ) {
        use tsb_common::{KeyBound, KeyRange, TimeRange};
        use tsb_core::split::partition_index_by_key;

        let mut node = tiling_node(&splits);
        node.validate().unwrap();

        // With 3-in-4 probability, apply a genuine index keyspace split
        // (paper rule set, straddling historical entries copied to both
        // halves) and keep one half, so the node carries historical
        // entries sticking out of its own key range.
        let (pick, side) = keyspace_split;
        if pick % 4 != 0 {
            // Split values must be current-entry lower bounds: in a real
            // tree every entry's lower bound is a current keyspace
            // boundary, so a split never straddles a current child.
            let candidates: Vec<Key> = node
                .current_region()
                .iter()
                .map(|e| e.key_range.lo.clone())
                .filter(|k| !k.is_min())
                .collect();
            if !candidates.is_empty() {
                let split = candidates[pick as usize % candidates.len()].clone();
                let parts = partition_index_by_key(node.entries(), &split);
                let (range, entries) = if side % 2 == 0 {
                    (
                        KeyRange::new(Key::MIN, KeyBound::Finite(split)),
                        parts.left,
                    )
                } else {
                    (
                        KeyRange::new(split, KeyBound::PlusInfinity),
                        parts.right,
                    )
                };
                node = tsb_core::IndexNode::from_entries(range, TimeRange::full(), entries);
                node.validate().unwrap();
            }
        }

        let compare = |key: &Key, ts: Timestamp| {
            let partitioned = node.find_child(key, ts).map(|e| e.child);
            let linear = node.find_child_linear(key, ts).map(|e| e.child);
            prop_assert_eq!(
                partitioned, linear,
                "divergence at (key {}, ts {})", key, ts
            );
            Ok(())
        };

        // Every entry's corner points, probed at the entry's own start
        // time, just before its end, and at the end of time.
        let corner_entries: Vec<(Key, Timestamp, Option<Timestamp>)> = node
            .entries()
            .iter()
            .map(|e| {
                (
                    e.key_range.lo.clone(),
                    e.time_range.lo,
                    e.time_range.hi.as_finite(),
                )
            })
            .collect();
        for (lo, t_lo, t_hi) in &corner_entries {
            compare(lo, *t_lo)?;
            compare(lo, Timestamp::MAX)?;
            if let Some(h) = t_hi {
                compare(lo, *h)?;
                if h.value() > 0 {
                    compare(lo, h.prev())?;
                }
            }
        }
        // Random probes, with a bias toward MAX (the hot descent).
        for (a, b) in &probes {
            let key = Key::from_u64(u64::from(a % 1200));
            let ts = if b % 8 == 0 {
                Timestamp::MAX
            } else {
                Timestamp(u64::from(b % 1100))
            };
            compare(&key, ts)?;
        }
    }
}
