//! Crash recovery: after *any* injected device death, reopening the
//! surviving files must yield a tree that passes `verify()`, equals the
//! oracle's replay of the durable prefix (every commit whose fence record
//! survived in the WAL — and nothing after it), and preserves all WORM
//! history. The fault-injection matrix crashes at every instrumented write
//! stage and at arbitrary write budgets; the proptest crashes at arbitrary
//! points in arbitrary op streams.
//!
//! Environment knobs for the CI recovery-stress job:
//! * `TSB_CRASH_SEED` — workload seed for the `#[ignore]`d stress variant.
//! * `TSB_CRASH_POINT` — restrict the stress matrix to one crash point
//!   (e.g. `WalAppend`); unset runs all of them.
//! * `TSB_STRESS_SCALE` — multiplies workload size and crash depths
//!   (the scheduled long-stress job passes a larger value).
//! * `TSB_WAL_MODE` — `hybrid` (default) or `images`: the `WalMode` every
//!   scenario in this file runs under, so the whole matrix can be replayed
//!   against the images-only off-switch.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use tsb_common::{FsyncPolicy, Key, SplitPolicyKind, Timestamp, TsbConfig};
use tsb_core::{ConcurrentTsb, CrashPoint, FaultInjector, TsbTree, Wal};
use tsb_storage::{IoStats, MagneticStore, WormStore};
use tsb_workload::{crash_matrix, generate_ops, CrashSpec, CrashTrigger, Op, Oracle, WorkloadSpec};

/// Ops between the driver's periodic checkpoints, so the crash matrix also
/// lands inside checkpoint flushes (`MagneticWrite` / `MagneticSync` /
/// `WalCheckpoint` stages).
const CHECKPOINT_EVERY: usize = 100;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-rec-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn crash_cfg() -> TsbConfig {
    let mode = match std::env::var("TSB_WAL_MODE").as_deref() {
        Ok("images") => tsb_common::WalMode::ImagesOnly,
        _ => tsb_common::WalMode::Hybrid,
    };
    TsbConfig::small_pages()
        .with_split_policy(SplitPolicyKind::TimePreferring)
        .with_wal_mode(mode)
}

/// Opens the three durable files with a shared fault injector wired into
/// every write site, creating a durable tree. The injector is armed only
/// *after* create, so the crash lands inside the workload, deterministically.
fn create_durable_with_injector(dir: &TempDir, cfg: &TsbConfig) -> (TsbTree, Arc<FaultInjector>) {
    let stats = Arc::new(IoStats::new());
    let magnetic = Arc::new(
        MagneticStore::open_file(dir.path("current.pages"), cfg.page_size, Arc::clone(&stats))
            .unwrap(),
    );
    let worm = Arc::new(
        WormStore::open_file(
            dir.path("history.worm"),
            cfg.worm_sector_size,
            Arc::clone(&stats),
        )
        .unwrap(),
    );
    let wal = Wal::create(dir.path("redo.wal"), cfg.fsync_policy, stats).unwrap();
    let injector = Arc::new(FaultInjector::new());
    magnetic.set_fault_injector(Arc::clone(&injector));
    worm.set_fault_injector(Arc::clone(&injector));
    wal.set_fault_injector(Arc::clone(&injector));
    let tree = TsbTree::create_durable(magnetic, worm, wal, cfg.clone()).unwrap();
    (tree, injector)
}

/// The commit log a crash scenario attempted: `(key, ts, value-or-tombstone)`
/// with timestamps assigned by the driver, so even ops that died mid-write
/// have a known timestamp.
type AttemptLog = Vec<(Key, Timestamp, Option<Vec<u8>>)>;

/// Replays `ops` with explicit timestamps `1..`, checkpointing every
/// [`CHECKPOINT_EVERY`] ops, until the injected crash kills the engine (or
/// the stream ends). Returns every *attempted* op.
fn replay_until_crash(tree: &mut TsbTree, ops: &[Op]) -> AttemptLog {
    let mut log = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if i > 0 && i % CHECKPOINT_EVERY == 0 && tree.checkpoint().is_err() {
            break;
        }
        let ts = Timestamp(i as u64 + 1);
        let result = match op {
            Op::Put { key, value } => {
                log.push((key.clone(), ts, Some(value.clone())));
                tree.insert_at(key.clone(), value.clone(), ts)
            }
            Op::Delete { key } => {
                log.push((key.clone(), ts, None));
                tree.delete_at(key.clone(), ts)
            }
        };
        if result.is_err() {
            break;
        }
    }
    log
}

/// The scenario's ground truth: the oracle holding the attempted ops whose
/// timestamps are at or below the recovered tree's durable cut.
fn durable_oracle(log: &AttemptLog, cut: Timestamp) -> Oracle {
    let mut oracle = Oracle::new();
    for (key, ts, value) in log {
        if *ts <= cut {
            oracle.apply_put(key.clone(), *ts, value.clone());
        }
    }
    oracle
}

/// The core assertion: the recovered tree answers exactly like the oracle
/// replay of the durable prefix — at every attempted timestamp, at the cut,
/// and at the end of time (nothing past the cut survived).
fn assert_recovered_matches_durable_prefix(tree: &TsbTree, log: &AttemptLog, crashed: bool) {
    tree.verify().unwrap();
    let cut = tree
        .last_durable_commit()
        .expect("a recovered tree reports its durable cut");
    if !crashed {
        // Without a crash every attempted commit must be durable: the WAL
        // held every fence when the process "died" (dropped its caches).
        assert_eq!(cut, log.last().map(|(_, ts, _)| *ts).unwrap_or(cut));
    }
    let oracle = durable_oracle(log, cut);
    // Point reads across all of history (this also exercises the WORM
    // store: migrated versions answer from historical nodes).
    for (key, ts, _) in log {
        assert_eq!(
            tree.get_as_of(key, *ts).unwrap(),
            oracle.get_as_of(key, *ts),
            "key {key} as of {ts} (cut {cut})"
        );
    }
    // Version histories contain the durable prefix and nothing more.
    for key in oracle.keys() {
        let tree_history: Vec<Timestamp> = tree
            .versions(key)
            .unwrap()
            .iter()
            .map(|v| v.commit_time().unwrap())
            .collect();
        let oracle_history: Vec<Timestamp> = oracle.versions(key).iter().map(|(t, _)| *t).collect();
        assert_eq!(tree_history, oracle_history, "history of {key}");
    }
    // Whole-database snapshots at the cut and at the end of time agree —
    // the latter proves no un-fenced write resurfaced.
    assert_eq!(tree.snapshot_at(cut).unwrap(), oracle.snapshot_at(cut));
    assert_eq!(
        tree.snapshot_at(Timestamp::MAX).unwrap(),
        oracle.snapshot_at(Timestamp::MAX)
    );
}

/// Runs one crash scenario end to end and returns the recovered tree's cut.
fn run_crash_scenario(tag: &str, spec: &CrashSpec, cfg: &TsbConfig) -> Timestamp {
    let dir = TempDir::new(tag);
    let ops = generate_ops(&spec.workload);
    let (mut tree, injector) = create_durable_with_injector(&dir, cfg);
    spec.trigger.arm(&injector);
    let log = replay_until_crash(&mut tree, &ops);
    let crashed = injector.tripped();
    drop(tree); // the crashed process's memory is gone

    let recovered = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg.clone())
        .open_tree()
        .unwrap();
    assert_recovered_matches_durable_prefix(&recovered, &log, crashed);
    recovered.last_durable_commit().unwrap()
}

#[test]
fn fault_injection_matrix_recovers_at_every_crash_point() {
    let cfg = crash_cfg();
    for (i, spec) in crash_matrix(1, 1).iter().enumerate() {
        run_crash_scenario(&format!("matrix-{i}"), spec, &cfg);
    }
}

/// The CI recovery-stress matrix entry point: seed, crash-point filter, and
/// scale come from the environment (see the module docs).
#[test]
#[ignore = "high-iteration stress variant, run explicitly (CI recovery-stress job)"]
fn fault_injection_stress_matrix() {
    let seed: u64 = std::env::var("TSB_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let scale: u64 = std::env::var("TSB_STRESS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let point_filter = std::env::var("TSB_CRASH_POINT")
        .ok()
        .and_then(|s| CrashPoint::parse(&s));
    let cfg = crash_cfg();
    for (i, spec) in crash_matrix(seed, scale).iter().enumerate() {
        if let Some(filter) = point_filter {
            match spec.trigger {
                CrashTrigger::AtPoint { point, .. } if point == filter => {}
                _ => continue,
            }
        }
        let mut spec = spec.clone();
        spec.workload.num_ops *= scale.max(1) as usize;
        run_crash_scenario(&format!("stress-{seed}-{i}"), &spec, &cfg);
    }
}

#[test]
fn recovered_tree_keeps_serving_and_recovers_again() {
    let cfg = crash_cfg();
    let dir = TempDir::new("reuse");
    let spec = CrashSpec::new(7, CrashTrigger::AfterWrites(300));
    let ops = generate_ops(&spec.workload);
    let (mut tree, injector) = create_durable_with_injector(&dir, &cfg);
    spec.trigger.arm(&injector);
    let log = replay_until_crash(&mut tree, &ops);
    drop(tree);

    // First recovery, then a second generation of writes on the recovered
    // tree (no injector this time), then a second recovery.
    let mut recovered = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg.clone())
        .open_tree()
        .unwrap();
    let cut = recovered.last_durable_commit().unwrap();
    let mut oracle = durable_oracle(&log, cut);
    for i in 0..150u64 {
        let key = i % 20;
        let ts = recovered
            .insert(key, format!("gen2-{i}").into_bytes())
            .unwrap();
        oracle.put(key, ts, format!("gen2-{i}").into_bytes());
    }
    recovered.verify().unwrap();
    drop(recovered); // again: no flush, no checkpoint

    let tree = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg)
        .open_tree()
        .unwrap();
    tree.verify().unwrap();
    for key in oracle.keys() {
        assert_eq!(
            tree.get_current(key).unwrap(),
            oracle.get_current(key),
            "current value of {key} after second recovery"
        );
    }
    assert_eq!(
        tree.snapshot_at(Timestamp::MAX).unwrap(),
        oracle.snapshot_at(Timestamp::MAX)
    );
}

#[test]
fn recovery_reclaims_unreachable_magnetic_pages() {
    // The redo log has no record kind for page frees, so replay can only
    // ever allocate: any page freed since the last checkpoint would come
    // back allocated-but-unreachable after a crash. Recovery must rebuild
    // the free list from reachability instead of leaking such pages
    // forever (verify() treats a leaked page as a hard error, so without
    // the reclaim this store would be unrecoverable).
    let cfg = crash_cfg();
    let dir = TempDir::new("reclaim");
    let stats = Arc::new(IoStats::new());
    let magnetic = Arc::new(
        MagneticStore::open_file(dir.path("current.pages"), cfg.page_size, Arc::clone(&stats))
            .unwrap(),
    );
    let worm = Arc::new(
        WormStore::open_file(
            dir.path("history.worm"),
            cfg.worm_sector_size,
            Arc::clone(&stats),
        )
        .unwrap(),
    );
    let wal = Wal::create(dir.path("redo.wal"), cfg.fsync_policy, stats).unwrap();
    let mut tree = TsbTree::create_durable(Arc::clone(&magnetic), worm, wal, cfg.clone()).unwrap();
    for i in 0..200u64 {
        tree.insert(i % 25, format!("value-{i}").into_bytes())
            .unwrap();
    }
    tree.checkpoint().unwrap();

    // Inflict the wound a free-less log leaves behind: a page that is
    // allocated in the durable superblock but reachable from nothing.
    let orphan = magnetic.allocate().unwrap();
    magnetic
        .write(orphan, b"allocated but unreachable")
        .unwrap();
    magnetic.sync().unwrap();
    drop(tree); // crash: no flush, no checkpoint

    let recovered = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg)
        .open_tree()
        .unwrap();
    // verify() distinguishes leaked from reclaimed: it hard-errors if any
    // allocated page is unreachable from the root.
    recovered.verify().unwrap();
    for key in 0..25u64 {
        assert!(
            recovered
                .get_current(&Key::from_u64(key))
                .unwrap()
                .is_some(),
            "key {key} survived recovery"
        );
    }
}

#[test]
fn torn_wal_tail_truncates_to_a_clean_prefix() {
    let cfg = crash_cfg();
    // Tear the log at several depths; every tear must recover cleanly to
    // some durable prefix.
    for cut_bytes in [1u64, 3, 17, 64, 257] {
        let dir = TempDir::new(&format!("torn-{cut_bytes}"));
        let ops = generate_ops(
            &WorkloadSpec::default()
                .with_ops(200)
                .with_keys(20)
                .with_value_size(24)
                .with_seed(3),
        );
        let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
        let log = replay_until_crash(&mut tree, &ops);
        drop(tree);

        let wal_path = dir.path("redo.wal");
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        file.set_len(len - cut_bytes.min(len)).unwrap();
        drop(file);

        let recovered = tsb_core::TsbOptions::durable(&dir.0)
            .config(cfg.clone())
            .open_tree()
            .unwrap();
        // The tear may have eaten the last commit(s): the recovered cut can
        // be below the last attempted ts, but consistency must hold.
        assert_recovered_matches_durable_prefix(&recovered, &log, true);
    }
}

#[test]
fn wal_before_page_holds_under_heavy_cache_and_pool_pressure() {
    // Tiny buffer pool and node cache: dirty-overflow write-back and pool
    // evictions fire constantly. Every write-back site debug_asserts the
    // WAL-before-page invariant (this test exercises them in debug builds)
    // and recovery must still reproduce the full history.
    let mut cfg = crash_cfg();
    cfg.buffer_pool_pages = 8;
    cfg.node_cache_entries = 8;
    let dir = TempDir::new("pressure");
    let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
    let ops = generate_ops(
        &WorkloadSpec::default()
            .with_ops(800)
            .with_keys(80)
            .with_update_ratio(3.0)
            .with_value_size(24)
            .with_seed(11),
    );
    let log = replay_until_crash(&mut tree, &ops);
    let delta = tree.io_stats().snapshot();
    assert!(
        delta.node_encodes > 0,
        "the tiny cache must have forced overflow write-backs"
    );
    drop(tree);
    let recovered = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg)
        .open_tree()
        .unwrap();
    assert_recovered_matches_durable_prefix(&recovered, &log, false);
}

#[test]
fn uncommitted_transactions_die_with_the_crash() {
    let cfg = crash_cfg();
    let dir = TempDir::new("txn");
    let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
    let t1 = tree.insert(1u64, b"durable".to_vec()).unwrap();
    let txn = tree.begin_txn();
    tree.txn_insert(txn, 1u64, b"pending-update".to_vec())
        .unwrap();
    tree.txn_insert(txn, 50u64, b"pending-insert".to_vec())
        .unwrap();
    drop(tree); // crash with the transaction open

    let tree = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg)
        .open_tree()
        .unwrap();
    tree.verify().unwrap();
    assert_eq!(
        tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
        b"durable".to_vec()
    );
    assert!(tree.get_current(&Key::from_u64(50)).unwrap().is_none());
    assert!(tree.pending_version(&Key::from_u64(1)).unwrap().is_none());
    assert!(tree.pending_version(&Key::from_u64(50)).unwrap().is_none());
    assert!(tree.last_durable_commit().unwrap() >= t1);
}

#[test]
fn committed_transactions_survive_whole_or_not_at_all() {
    let cfg = crash_cfg();
    let dir = TempDir::new("txn-commit");
    let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
    let txn = tree.begin_txn();
    for k in 0..6u64 {
        tree.txn_insert(txn, k, vec![b'a'; 8]).unwrap();
    }
    let ts = tree.commit_txn(txn).unwrap();
    drop(tree);

    let tree = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg)
        .open_tree()
        .unwrap();
    for k in 0..6u64 {
        let v = tree
            .get_version_as_of(&Key::from_u64(k), ts)
            .unwrap()
            .expect("committed key survived");
        assert_eq!(v.commit_time(), Some(ts), "atomic commit timestamp");
    }
}

#[test]
fn fsync_policies_trade_syncs_for_throughput_observably() {
    let mut syncs = Vec::new();
    for policy in [FsyncPolicy::Always, FsyncPolicy::EveryN(8), FsyncPolicy::Os] {
        let dir = TempDir::new(&format!("fsync-{policy:?}"));
        let cfg = crash_cfg().with_fsync_policy(policy);
        let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
        let before = tree.io_stats().snapshot();
        for i in 0..64u64 {
            tree.insert(i % 8, vec![b'v'; 16]).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        syncs.push(delta.wal_syncs);
        // Whatever the policy, the records themselves are always appended.
        assert!(delta.wal_appends >= 64, "{policy:?}");
    }
    let (always, every8, os) = (syncs[0], syncs[1], syncs[2]);
    assert_eq!(always, 64, "Always fsyncs each commit");
    assert_eq!(every8, 8, "EveryN(8) amortizes 64 commits into 8 syncs");
    assert_eq!(os, 0, "Os never fsyncs outside checkpoints");
}

#[test]
fn concurrent_engine_recovers_after_concurrent_traffic() {
    let cfg = crash_cfg();
    let dir = TempDir::new("concurrent");
    {
        let db = tsb_core::TsbOptions::durable(&dir.0)
            .config(cfg.clone())
            .open_concurrent()
            .unwrap();
        assert!(db.is_durable());
        std::thread::scope(|s| {
            {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..400u64 {
                        db.insert(i % 40, format!("w{i}").into_bytes()).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let db = db.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let ts = db.last_installed();
                        let _ = db.snapshot_at(ts).unwrap();
                    }
                });
            }
        });
        db.verify().unwrap();
        // Crash without checkpoint: drop every cache.
    }
    let db = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg)
        .open_concurrent()
        .unwrap();
    db.verify().unwrap();
    let cut = db.last_durable_commit().unwrap();
    assert_eq!(cut.value(), 400, "every commit was WAL-fenced");
    for key in 0..40u64 {
        assert_eq!(
            db.get_current(&Key::from_u64(key)).unwrap().unwrap(),
            format!("w{}", 360 + key).into_bytes()
        );
    }
}

/// A durable concurrent engine whose every write site shares one injector.
fn create_concurrent_durable_with_injector(
    dir: &TempDir,
    cfg: &TsbConfig,
) -> (ConcurrentTsb, Arc<FaultInjector>) {
    let (tree, injector) = create_durable_with_injector(dir, cfg);
    (ConcurrentTsb::from_tree(tree), injector)
}

/// Runs `threads` closed-loop writers against a fresh `Always`-policy engine
/// with the injector armed at `point` (after `skip` occurrences), records
/// which commits were *acknowledged* (insert returned Ok), and returns them
/// together with whether the crash fired. Keys are unique per (thread, op),
/// so every acknowledged key maps to exactly one expected value.
fn drive_committer_crash(
    dir: &TempDir,
    cfg: &TsbConfig,
    threads: u64,
    ops_per_thread: u64,
    point: CrashPoint,
    skip: u64,
) -> (Vec<(u64, Timestamp)>, bool) {
    let (db, injector) = create_concurrent_durable_with_injector(dir, cfg);
    injector.crash_at(point, skip);
    let acked = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            let acked = &acked;
            s.spawn(move || {
                for i in 0..ops_per_thread {
                    let key = t * 1_000_000 + i;
                    match db.insert(key, format!("v{key}").into_bytes()) {
                        Ok(ts) => acked.lock().unwrap().push((key, ts)),
                        Err(_) => break,
                    }
                }
            });
        }
    });
    let crashed = injector.tripped();
    (acked.into_inner().unwrap(), crashed)
}

/// Asserts the zero-acknowledged-commit-loss contract: every commit the
/// engine acknowledged before the crash is present value-exact after
/// recovery, at or below the recovered durable cut.
fn assert_no_acknowledged_loss(dir: &TempDir, cfg: &TsbConfig, acked: &[(u64, Timestamp)]) {
    let recovered = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg.clone())
        .open_concurrent()
        .unwrap();
    recovered.verify().unwrap();
    let cut = recovered.last_durable_commit().unwrap();
    for (key, ts) in acked {
        assert!(
            *ts <= cut,
            "acknowledged commit key {key} @ {ts} sits above the recovered cut {cut}"
        );
        assert_eq!(
            recovered.get_current(&Key::from_u64(*key)).unwrap(),
            Some(format!("v{key}").into_bytes()),
            "acknowledged commit key {key} @ {ts} lost (cut {cut})"
        );
    }
}

/// The group-commit thread dies mid-drain (`WalSync`: before the device
/// sync is issued) or in the window between the fsync completing and the
/// durable-LSN watermark being published (`WalSyncPublish`). Either way,
/// no commit the engine *acknowledged* may be lost — the pipelined path
/// must never acknowledge ahead of the device.
#[test]
fn committer_thread_crash_never_loses_acknowledged_commits() {
    let cfg = crash_cfg().with_fsync_policy(FsyncPolicy::Always);
    for point in [CrashPoint::WalSync, CrashPoint::WalSyncPublish] {
        for skip in [0u64, 3, 11] {
            let dir = TempDir::new(&format!("gc-{point:?}-{skip}"));
            let (acked, crashed) = drive_committer_crash(&dir, &cfg, 4, 60, point, skip);
            assert!(
                crashed,
                "{point:?} skip {skip}: the workload must reach the drain"
            );
            // With the crash landing after `skip` drains, at most a handful
            // of commits were acknowledged — but never fewer than the
            // drains that completed.
            assert!(
                acked.len() as u64 >= skip,
                "{point:?}: each completed drain acknowledges at least one commit"
            );
            assert_no_acknowledged_loss(&dir, &cfg, &acked);
        }
    }
}

#[test]
fn torn_tail_mid_delta_run_recovers_the_logged_prefix() {
    // Hammer a handful of keys so the log tail is a pure delta run (one
    // first-touch image per page, then InsertVersion deltas), then tear the
    // file at several depths that land *inside* delta records. The page
    // image survives, the trailing deltas are dropped, and recovery still
    // verifies and equals the durable prefix.
    let cfg = crash_cfg();
    for cut_bytes in [2u64, 9, 33, 70, 141] {
        let dir = TempDir::new(&format!("torn-delta-{cut_bytes}"));
        let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
        let mut log: AttemptLog = Vec::new();
        let mut wrote_deltas = false;
        for i in 0..160u64 {
            let key = i % 4; // few keys: updates, not splits, dominate
            let ts = Timestamp(i + 1);
            let value = format!("d{i}").into_bytes();
            let before = tree.io_stats().snapshot();
            log.push((Key::from_u64(key), ts, Some(value.clone())));
            tree.insert_at(key, value, ts).unwrap();
            let delta = tree.io_stats().snapshot().delta_since(&before);
            // One commit + at least one page record; when only deltas were
            // appended, the op logged no page image.
            wrote_deltas |= delta.wal_bytes_appended < 200;
        }
        assert!(wrote_deltas, "the workload must exercise the delta path");
        drop(tree);

        let wal_path = dir.path("redo.wal");
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        file.set_len(len - cut_bytes.min(len)).unwrap();
        drop(file);

        let recovered = tsb_core::TsbOptions::durable(&dir.0)
            .config(cfg.clone())
            .open_tree()
            .unwrap();
        assert_recovered_matches_durable_prefix(&recovered, &log, true);
    }
}

/// Steady-state WAL traffic guard (also run by the CI recovery-stress job):
/// after warmup, the hybrid log must stay under a checked-in byte budget
/// per mutation. `TSB_WAL_BYTES_PER_OP_BUDGET` overrides the budget for
/// noisy containers or deliberate format experiments.
#[test]
fn steady_state_wal_bytes_per_op_stays_within_budget() {
    const DEFAULT_BUDGET: f64 = 300.0;
    let budget: f64 = std::env::var("TSB_WAL_BYTES_PER_OP_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_BUDGET);
    let mut cfg = TsbConfig::default()
        .with_page_size(1024)
        .with_split_policy(SplitPolicyKind::TimePreferring)
        .with_fsync_policy(FsyncPolicy::Os);
    cfg.max_key_len = 64;
    let dir = TempDir::new("wal-budget");
    let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
    let spec = WorkloadSpec::default()
        .with_ops(2_000)
        .with_keys(200)
        .with_update_ratio(4.0)
        .with_value_size(48)
        .with_seed(5);
    let ops = generate_ops(&spec);
    let (warmup, steady) = ops.split_at(ops.len() / 4);
    fn replay(tree: &mut TsbTree, ops: &[Op]) {
        for op in ops {
            match op {
                Op::Put { key, value } => {
                    tree.insert(key.clone(), value.clone()).unwrap();
                }
                Op::Delete { key } => {
                    tree.delete(key.clone()).unwrap();
                }
            }
        }
    }
    replay(&mut tree, warmup);
    let before = tree.io_stats().snapshot();
    replay(&mut tree, steady);
    let delta = tree.io_stats().snapshot().delta_since(&before);
    let bytes_per_op = delta.wal_bytes_appended as f64 / steady.len() as f64;
    assert!(
        bytes_per_op <= budget,
        "steady-state WAL traffic regressed: {bytes_per_op:.1} B/op > budget {budget:.1} \
         (override with TSB_WAL_BYTES_PER_OP_BUDGET only for deliberate format changes)"
    );
}

// ---------- property: acknowledged commits survive committer crashes ---------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The `Always` contract, pipelined: an insert that returned `Ok` was
    /// durable *before* it was acknowledged, so killing the group-commit
    /// thread at an arbitrary drain — mid-capture or in the fsync→publish
    /// window — loses nothing acknowledged; and recovery lands exactly on
    /// the durable watermark (re-recovering is a fixed point; a clean
    /// shutdown recovers to precisely the last acknowledged commit).
    #[test]
    fn acknowledged_commits_survive_committer_crashes(
        threads in 1u64..5,
        ops_per_thread in 1u64..40,
        publish_stage in any::<bool>(),
        skip in 0u64..24,
    ) {
        let point = if publish_stage {
            CrashPoint::WalSyncPublish
        } else {
            CrashPoint::WalSync
        };
        let cfg = crash_cfg().with_fsync_policy(FsyncPolicy::Always);
        let dir = TempDir::new("gc-prop");
        let (acked, crashed) =
            drive_committer_crash(&dir, &cfg, threads, ops_per_thread, point, skip);
        if !crashed {
            // The skip outlived the run: a clean shutdown. Every op must
            // have been acknowledged, and recovery must land exactly on
            // the last acknowledged commit.
            prop_assert_eq!(acked.len() as u64, threads * ops_per_thread);
        }
        assert_no_acknowledged_loss(&dir, &cfg, &acked);
        let first_cut = {
            let db = tsb_core::TsbOptions::durable(&dir.0).config(cfg.clone()).open_concurrent().unwrap();
            db.last_durable_commit().unwrap()
        };
        if !crashed {
            let newest_ack = acked.iter().map(|(_, ts)| *ts).max().unwrap_or(Timestamp(0));
            prop_assert_eq!(first_cut, newest_ack);
        }
        // Recovery is exact: recovering the recovered state moves nothing.
        let db = tsb_core::TsbOptions::durable(&dir.0).config(cfg).open_concurrent().unwrap();
        prop_assert_eq!(db.last_durable_commit(), Some(first_cut));
    }
}

// ---------- property: recovery is prefix-consistent --------------------------

#[derive(Clone, Debug)]
enum PropOp {
    Put { key: u8, len: u8 },
    Delete { key: u8 },
}

fn prop_ops() -> impl Strategy<Value = Vec<PropOp>> {
    prop::collection::vec(
        prop_oneof![
            5 => (any::<u8>(), any::<u8>()).prop_map(|(key, len)| PropOp::Put {
                key: key % 24,
                len: len % 32,
            }),
            1 => any::<u8>().prop_map(|key| PropOp::Delete { key: key % 24 }),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary op sequence, crash after an arbitrary number of device
    /// writes, optional mid-stream checkpoint: the reopened tree equals the
    /// oracle replay of the durable prefix.
    #[test]
    fn recovery_is_prefix_consistent(
        ops in prop_ops(),
        budget in 1u64..600,
        checkpoint_at in prop::option::of(0usize..180),
    ) {
        let cfg = crash_cfg();
        let dir = TempDir::new("prop");
        let (mut tree, injector) = create_durable_with_injector(&dir, &cfg);
        // Arm the write budget after the optional mid-stream checkpoint so
        // the checkpoint itself succeeds and moves the replay base.
        let arm_at = checkpoint_at.map(|c| c + 1).unwrap_or(0);
        let mut log: AttemptLog = Vec::new();
        if arm_at == 0 {
            injector.fail_after_writes(budget);
        }
        for (i, op) in ops.iter().enumerate() {
            if Some(i) == checkpoint_at && tree.checkpoint().is_err() {
                break;
            }
            if i == arm_at && arm_at > 0 {
                injector.fail_after_writes(budget);
            }
            let ts = Timestamp(i as u64 + 1);
            let result = match op {
                PropOp::Put { key, len } => {
                    let value = vec![*key; *len as usize + 1];
                    log.push((Key::from_u64(*key as u64), ts, Some(value.clone())));
                    tree.insert_at(*key as u64, value, ts)
                }
                PropOp::Delete { key } => {
                    log.push((Key::from_u64(*key as u64), ts, None));
                    tree.delete_at(*key as u64, ts)
                }
            };
            if result.is_err() { break; }
        }
        let crashed = injector.tripped();
        drop(tree);
        let recovered = tsb_core::TsbOptions::durable(&dir.0).config(cfg).open_tree().unwrap();
        assert_recovered_matches_durable_prefix(&recovered, &log, crashed);
    }
}

// ---------- property: hybrid deltas replay exactly like full images ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The `WalMode` off-switch is only trustworthy if both modes are
    /// *interchangeable*: an arbitrary op stream crashed at an arbitrary
    /// depth (optionally checkpointed mid-stream, so deltas straddle a log
    /// reset) must recover to the identical tree whether the log carried
    /// logical deltas (`Hybrid`) or a full page image per rewrite
    /// (`ImagesOnly`).
    #[test]
    fn delta_replay_equals_image_replay(
        ops in prop_ops(),
        crash_depth in 1usize..200,
        checkpoint_at in prop::option::of(0usize..150),
    ) {
        let mut recovered: Vec<TsbTree> = Vec::new();
        let mut dirs = Vec::new(); // keep tempdirs alive until compared
        let mut attempted = 0usize;
        for mode in [tsb_common::WalMode::Hybrid, tsb_common::WalMode::ImagesOnly] {
            let cfg = crash_cfg().with_wal_mode(mode);
            let dir = TempDir::new(&format!("mode-{mode:?}"));
            let (mut tree, _injector) = create_durable_with_injector(&dir, &cfg);
            attempted = 0;
            for (i, op) in ops.iter().take(crash_depth).enumerate() {
                if Some(i) == checkpoint_at {
                    tree.checkpoint().unwrap();
                }
                let ts = Timestamp(i as u64 + 1);
                match op {
                    PropOp::Put { key, len } => {
                        tree.insert_at(*key as u64, vec![*key; *len as usize + 1], ts).unwrap()
                    }
                    PropOp::Delete { key } => tree.delete_at(*key as u64, ts).unwrap(),
                }
                attempted = i + 1;
            }
            drop(tree); // crash: caches gone, only the WAL speaks
            recovered.push(tsb_core::TsbOptions::durable(&dir.0).config(cfg).open_tree().unwrap());
            dirs.push(dir);
        }
        let (hybrid, images) = (&recovered[0], &recovered[1]);
        hybrid.verify().unwrap();
        images.verify().unwrap();
        prop_assert_eq!(hybrid.last_durable_commit(), images.last_durable_commit());
        // Identical answers across all of history: every attempted
        // timestamp, the cut, and the end of time.
        for probe in 0..=attempted as u64 {
            prop_assert_eq!(
                hybrid.snapshot_at(Timestamp(probe)).unwrap(),
                images.snapshot_at(Timestamp(probe)).unwrap(),
                "snapshots diverge at ts {}", probe
            );
        }
        prop_assert_eq!(
            hybrid.snapshot_at(Timestamp::MAX).unwrap(),
            images.snapshot_at(Timestamp::MAX).unwrap()
        );
        for key in 0..24u64 {
            let key = Key::from_u64(key);
            prop_assert_eq!(
                hybrid.versions(&key).unwrap(),
                images.versions(&key).unwrap(),
                "version history diverges for {}", key
            );
        }
    }
}
