//! Loopback equivalence tests for `tsb-server` / `tsb-client`.
//!
//! The server must be a transparent wire wrapper around [`ConcurrentTsb`]:
//! for the same deterministic schedule, every answer that comes back over
//! a loopback socket must equal (a) the in-memory [`Oracle`] replayed at
//! the server-assigned commit timestamps and (b) the in-process engine
//! queried directly. A final test drives the clean-shutdown path and
//! reopens the data directory to prove acknowledged writes were durable.

use std::path::PathBuf;

use tsb_client::TsbClient;
use tsb_common::{FsyncPolicy, Key, KeyBound, KeyRange, TimeRange, TsbConfig};
use tsb_server::TsbServer;
use tsb_workload::Oracle;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-loopback-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn served_engine(dir: &std::path::Path, policy: FsyncPolicy) -> TsbServer {
    let cfg = TsbConfig {
        fsync_policy: policy,
        ..TsbConfig::small_pages()
    };
    let db = tsb_core::TsbOptions::durable(dir)
        .config(cfg)
        .open_concurrent()
        .expect("open durable");
    TsbServer::start(db, "127.0.0.1:0").expect("start server")
}

/// A deterministic mixed schedule: puts, overwrites, and deletes over a
/// small key space. Returns `(key, value-or-tombstone)` in issue order.
fn schedule() -> Vec<(u64, Option<Vec<u8>>)> {
    let mut ops = Vec::new();
    for round in 0u64..6 {
        for k in 0u64..12 {
            if (round + k) % 7 == 3 {
                ops.push((k, None));
            } else {
                let value = format!("r{round}-k{k}-{}", "x".repeat((k as usize) % 9));
                ops.push((k, Some(value.into_bytes())));
            }
        }
    }
    ops
}

#[test]
fn loopback_answers_match_oracle_and_in_process_engine() {
    let dir = TempDir::new("oracle");
    let server = served_engine(dir.path(), FsyncPolicy::EveryN(4));
    let addr = server.local_addr();
    let mut client = TsbClient::connect(addr).expect("connect");

    // Replay the schedule over the wire, mirroring each server-assigned
    // commit timestamp into the oracle.
    let mut oracle = Oracle::new();
    let mut commit_times = Vec::new();
    for (k, op) in schedule() {
        let key = Key::from_u64(k);
        let ts = match &op {
            Some(value) => {
                let ts = client.put(key.clone(), value.clone()).expect("put");
                oracle.put(key.clone(), ts, value.clone());
                ts
            }
            None => {
                let ts = client.delete(key.clone()).expect("delete");
                oracle.delete(key.clone(), ts);
                ts
            }
        };
        commit_times.push(ts);
    }

    let everything = KeyRange::new(Key::from_u64(0), KeyBound::PlusInfinity);

    // Current reads: socket == oracle == direct engine.
    for k in 0u64..12 {
        let key = Key::from_u64(k);
        let over_wire = client.get(key.clone()).expect("get");
        assert_eq!(over_wire, oracle.get_current(&key), "current get key {k}");
        assert_eq!(
            over_wire,
            server.db().get_current(&key).expect("direct get"),
            "wire vs in-process get key {k}"
        );
    }

    // As-of reads and range scans at a sample of commit timestamps.
    for ts in commit_times.iter().step_by(9).copied() {
        for k in 0u64..12 {
            let key = Key::from_u64(k);
            let over_wire = client.get_as_of(key.clone(), ts).expect("get_as_of");
            assert_eq!(
                over_wire,
                oracle.get_as_of(&key, ts),
                "as-of {ts:?} key {k}"
            );
        }
        let over_wire = client
            .range(everything.clone(), Some(ts))
            .expect("range as-of");
        assert_eq!(
            over_wire,
            oracle.scan_as_of(&everything, ts),
            "range @ {ts:?}"
        );
        assert_eq!(
            over_wire,
            server
                .db()
                .scan_as_of(&everything, ts)
                .expect("direct scan"),
            "wire vs in-process range @ {ts:?}"
        );
    }

    // Current range scan.
    let over_wire = client.range(everything.clone(), None).expect("range");
    assert_eq!(
        over_wire,
        server.db().scan_current(&everything).expect("direct scan"),
        "current range"
    );

    // Version histories: the wire answer must equal the engine's.
    for k in 0u64..12 {
        let key = Key::from_u64(k);
        let window = TimeRange::full();
        let over_wire = client.history(key.clone(), window).expect("history");
        assert_eq!(
            over_wire,
            server
                .db()
                .history_between(&key, window)
                .expect("direct history"),
            "history key {k}"
        );
    }

    server.shutdown().expect("shutdown");
}

#[test]
fn loopback_transactions_commit_and_abort_like_the_engine() {
    let dir = TempDir::new("txn");
    let server = served_engine(dir.path(), FsyncPolicy::Always);
    let mut client = TsbClient::connect(server.local_addr()).expect("connect");

    // Committed txn: all writes appear atomically at the commit timestamp.
    let txn = client.txn_begin().expect("begin");
    client
        .txn_write(txn, Key::from_u64(1), Some(b"one".to_vec()))
        .expect("write 1");
    client
        .txn_write(txn, Key::from_u64(2), Some(b"two".to_vec()))
        .expect("write 2");
    let commit_ts = client.txn_commit(txn).expect("commit");
    assert_eq!(client.get(Key::from_u64(1)).unwrap(), Some(b"one".to_vec()));
    assert_eq!(
        client.get_as_of(Key::from_u64(2), commit_ts).unwrap(),
        Some(b"two".to_vec())
    );

    // Aborted txn: nothing becomes visible.
    let txn = client.txn_begin().expect("begin");
    client
        .txn_write(txn, Key::from_u64(3), Some(b"ghost".to_vec()))
        .expect("write 3");
    client.txn_abort(txn).expect("abort");
    assert_eq!(client.get(Key::from_u64(3)).unwrap(), None);

    // Committing a dead txn surfaces the engine's error over the wire.
    let err = client.txn_commit(txn).expect_err("commit after abort");
    assert!(
        err.to_string().contains("remote error"),
        "expected a remote error, got: {err}"
    );

    server.shutdown().expect("shutdown");
}

#[test]
fn pipelined_replies_can_be_reaped_out_of_order() {
    use tsb_client::protocol::{Reply, Request};

    let dir = TempDir::new("pipeline");
    let server = served_engine(dir.path(), FsyncPolicy::EveryN(8));
    let mut client = TsbClient::connect(server.local_addr()).expect("connect");

    // Fire a burst of pipelined puts without reading a single reply.
    let mut ids = Vec::new();
    for i in 0u64..32 {
        let id = client
            .send(&Request::Put {
                key: Key::from_u64(i % 8),
                value: format!("v{i}").into_bytes(),
            })
            .expect("send");
        ids.push(id);
    }

    // Reap them in reverse order; every reply must match its request id.
    for id in ids.iter().rev().copied() {
        match client.wait_for(id).expect("wait_for") {
            Reply::Committed { .. } => {}
            other => panic!("expected Committed for id {id}, got {other:?}"),
        }
    }
    assert_eq!(client.parked(), 0, "no stray replies left behind");

    // The burst's effects are all visible.
    for k in 0u64..8 {
        assert!(client.get(Key::from_u64(k)).expect("get").is_some());
    }

    server.shutdown().expect("shutdown");
}

#[test]
fn clean_shutdown_persists_every_acknowledged_write() {
    let dir = TempDir::new("smoke");
    let acked: Vec<(u64, Vec<u8>)> = {
        let server = served_engine(dir.path(), FsyncPolicy::Always);
        let addr = server.local_addr();
        let mut client = TsbClient::connect(addr).expect("connect");
        let mut acked = Vec::new();
        for i in 0u64..24 {
            let value = format!("durable-{i}").into_bytes();
            client.put(Key::from_u64(i), value.clone()).expect("put");
            acked.push((i, value));
        }
        // The smoke path CI drives: a client-initiated shutdown, after
        // which `wait` returns once the acceptor and workers drain.
        client.shutdown_server().expect("shutdown verb");
        server.wait().expect("server wait");
        acked
    };

    let cfg = TsbConfig {
        fsync_policy: FsyncPolicy::Always,
        ..TsbConfig::small_pages()
    };
    let reopened = tsb_core::TsbOptions::durable(dir.path())
        .config(cfg)
        .open_concurrent()
        .expect("reopen");
    for (k, value) in acked {
        assert_eq!(
            reopened.get_current(&Key::from_u64(k)).expect("get"),
            Some(value),
            "acknowledged key {k} must survive reopen"
        );
    }
}
