//! Sharded crash recovery: per-shard crash points and the two-phase fence
//! windows.
//!
//! The single-engine recovery matrix (`recovery.rs`) proves one WAL replays
//! to its durable prefix. This file proves the *sharded* claims on top:
//!
//! * A crash at any per-shard device write loses no acknowledged single-key
//!   write — each shard's WAL is an independent durability domain and a
//!   power cut (the tripped injector kills every shard at once) leaves each
//!   at some durable prefix covering everything acknowledged.
//! * A crash anywhere inside the two-phase fence — after `k` of `n`
//!   prepares, at the coordinator's decision append, in the window after
//!   the decision is durable but before any participant stamped its local
//!   commit, or between participant commits — never commits a cross-shard
//!   transaction partially. Recovery resolves surviving prepares against
//!   the coordinator's decision record: present on every shard or absent
//!   from every shard, with one commit timestamp everywhere.
//!
//! Like `recovery.rs`, every scenario honors `TSB_WAL_MODE`.

use std::path::PathBuf;
use std::sync::Arc;

use tsb_common::{FsyncPolicy, Key, SplitPolicyKind, Timestamp, TsbConfig};
use tsb_core::sharded::shard_of;
use tsb_core::{CrashPoint, FaultInjector};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-shcrash-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn crash_cfg() -> TsbConfig {
    let mode = match std::env::var("TSB_WAL_MODE").as_deref() {
        Ok("images") => tsb_common::WalMode::ImagesOnly,
        _ => tsb_common::WalMode::Hybrid,
    };
    TsbConfig::small_pages()
        .with_split_policy(SplitPolicyKind::TimePreferring)
        .with_wal_mode(mode)
        .with_fsync_policy(FsyncPolicy::Always)
}

const SHARDS: usize = 4;

/// Picks one key per shard (so every transaction genuinely straddles all
/// `SHARDS` shards and must run the two-phase fence), derived from `round`
/// so every round's key set is disjoint.
fn straddling_keys(round: u64) -> Vec<u64> {
    let mut picked: Vec<Option<u64>> = vec![None; SHARDS];
    let mut candidate = round * 10_000;
    while picked.iter().any(Option::is_none) {
        let shard = shard_of(&Key::from_u64(candidate), SHARDS);
        if picked[shard].is_none() {
            picked[shard] = Some(candidate);
        }
        candidate += 1;
    }
    picked.into_iter().map(Option::unwrap).collect()
}

fn txn_value(round: u64, key: u64) -> Vec<u8> {
    format!("t{round}-k{key}").into_bytes()
}

/// What a fence-window scenario demands of the *first crashed* transaction
/// after recovery.
#[derive(Clone, Copy, Debug)]
enum Expect {
    /// The crash landed before the decision was durable: presumed abort.
    Aborted,
    /// The crash landed after the decision was durable: rolled forward.
    Committed,
    /// The crash may land on either side (skip counts drift with page
    /// images); only atomicity is demanded.
    Either,
}

/// One two-phase-fence crash scenario: baseline writes, arm the injector,
/// drive cross-shard transactions into the crash, reopen, and assert
/// atomicity (twice — recovery must be a fixed point).
fn run_two_pc_crash(tag: &str, point: CrashPoint, skip: u64, expect: Expect) {
    let cfg = crash_cfg();
    let dir = TempDir::new(tag);
    let db = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg.clone())
        .shards(SHARDS)
        .open()
        .unwrap();

    // Baseline: acknowledged single-key writes on every shard, committed
    // before the injector exists. They must survive any later crash.
    for i in 0..16u64 {
        db.insert(Key::from_u64(900_000 + i), format!("base-{i}").into_bytes())
            .unwrap();
    }

    let injector = Arc::new(FaultInjector::new());
    db.set_fault_injector(Arc::clone(&injector));
    injector.crash_at(point, skip);

    // Cross-shard transactions until the injected crash (or the budget —
    // large skips may outlive the run, which is a clean shutdown).
    let mut acked: Vec<(Vec<u64>, Timestamp, u64)> = Vec::new();
    let mut attempted: Vec<(Vec<u64>, u64)> = Vec::new();
    let mut first_crashed: Option<u64> = None;
    for round in 0..24u64 {
        let keys = straddling_keys(round);
        let txn = db.begin_txn();
        attempted.push((keys.clone(), round));
        let mut dead = false;
        for k in &keys {
            if db
                .txn_insert(txn, Key::from_u64(*k), txn_value(round, *k))
                .is_err()
            {
                dead = true;
                break;
            }
        }
        if dead {
            first_crashed = Some(round);
            break;
        }
        match db.commit_txn(txn) {
            Ok(ts) => acked.push((keys, ts, round)),
            Err(_) => {
                first_crashed = Some(round);
                break;
            }
        }
    }
    let crashed = injector.tripped();
    if !matches!(expect, Expect::Either) {
        assert!(
            crashed,
            "{tag}: the workload never reached {point:?} (skip {skip}) — the scenario tested nothing"
        );
    }
    drop(db); // power cut: caches and transaction tables are gone

    for generation in 0..2 {
        let db = tsb_core::TsbOptions::durable(&dir.0)
            .config(cfg.clone())
            .shards(SHARDS)
            .open()
            .unwrap();
        db.verify().unwrap();

        // Zero acknowledged loss: the baseline and every acked transaction.
        for i in 0..16u64 {
            assert_eq!(
                db.get_current(&Key::from_u64(900_000 + i)).unwrap(),
                Some(format!("base-{i}").into_bytes()),
                "{tag}: baseline key lost (gen {generation})"
            );
        }
        for (keys, ts, round) in &acked {
            for k in keys {
                let v = db
                    .get_version_as_of(&Key::from_u64(*k), *ts)
                    .unwrap()
                    .unwrap_or_else(|| {
                        panic!("{tag}: acked txn {round} lost key {k} (gen {generation})")
                    });
                assert_eq!(v.state.commit_time(), Some(*ts), "{tag}: txn {round}");
                assert_eq!(v.value, Some(txn_value(*round, *k)), "{tag}: txn {round}");
            }
        }

        // No partial commit: every attempted transaction is all-or-nothing,
        // and when present, present at one timestamp on every shard.
        for (keys, round) in &attempted {
            let mut times = Vec::new();
            for k in keys {
                match db.get_current(&Key::from_u64(*k)).unwrap() {
                    Some(v) => {
                        assert_eq!(v, txn_value(*round, *k), "{tag}: foreign value on {k}");
                        let ver = db
                            .get_version_as_of(&Key::from_u64(*k), Timestamp::MAX)
                            .unwrap()
                            .expect("present key has a version");
                        times.push(ver.state.commit_time().unwrap());
                    }
                    None => times.push(Timestamp::ZERO),
                }
            }
            let committed = times.iter().filter(|t| **t > Timestamp::ZERO).count();
            assert!(
                committed == 0 || committed == keys.len(),
                "{tag}: txn {round} committed on {committed}/{} shards (gen {generation})",
                keys.len()
            );
            if committed > 0 {
                assert!(
                    times.windows(2).all(|w| w[0] == w[1]),
                    "{tag}: txn {round} committed at mixed timestamps {times:?}"
                );
            }
        }

        // The directed expectation for the transaction the crash hit.
        if generation == 0 && crashed {
            if let Some(round) = first_crashed {
                let keys = straddling_keys(round);
                let survived = db.get_current(&Key::from_u64(keys[0])).unwrap().is_some();
                match expect {
                    Expect::Aborted => assert!(
                        !survived,
                        "{tag}: txn {round} committed though its decision never became durable"
                    ),
                    Expect::Committed => assert!(
                        survived,
                        "{tag}: txn {round} aborted though its decision was durable"
                    ),
                    Expect::Either => {}
                }
            }
        }
    }
}

/// Crash after `k` of `n` prepares: no decision can exist, so the
/// transaction must vanish from every shard (presumed abort), including
/// the shards whose prepare *did* reach their WALs.
#[test]
fn crash_after_k_of_n_prepares_aborts_everywhere() {
    for skip in [0u64, 1, 2, 3] {
        run_two_pc_crash(
            &format!("prep-{skip}"),
            CrashPoint::WalPrepare,
            skip,
            Expect::Aborted,
        );
    }
    // Skips past the first transaction's prepares land inside later ones.
    for skip in [5u64, 10] {
        run_two_pc_crash(
            &format!("prep-late-{skip}"),
            CrashPoint::WalPrepare,
            skip,
            Expect::Aborted,
        );
    }
}

/// Crash at the coordinator's decision append: every prepare is durable
/// but the commit decision is not — presumed abort on every shard.
#[test]
fn crash_at_the_decision_aborts_everywhere() {
    for skip in [0u64, 1, 3] {
        run_two_pc_crash(
            &format!("dec-{skip}"),
            CrashPoint::WalDecision,
            skip,
            Expect::Aborted,
        );
    }
}

/// Crash in the in-doubt window — decision durable, zero participants
/// stamped: recovery must roll the prepared writes forward on every shard
/// from the decision record alone.
#[test]
fn crash_after_the_decision_commits_everywhere() {
    for skip in [0u64, 1, 3] {
        run_two_pc_crash(
            &format!("ack-{skip}"),
            CrashPoint::TwoPcAck,
            skip,
            Expect::Committed,
        );
    }
}

/// Crashes landing at arbitrary WAL appends and syncs inside the fence —
/// including between participant phase-2 commits ("before participant
/// ack"). Whichever side of the decision the trip lands on, the outcome is
/// atomic.
#[test]
fn arbitrary_wal_crashes_inside_the_fence_stay_atomic() {
    for (point, skips) in [
        (CrashPoint::WalAppend, [0u64, 3, 9, 17].as_slice()),
        (CrashPoint::WalSync, [0u64, 2, 5, 11].as_slice()),
        (CrashPoint::WalSyncPublish, [0u64, 4].as_slice()),
    ] {
        for &skip in skips {
            run_two_pc_crash(
                &format!("fence-{point:?}-{skip}"),
                point,
                skip,
                Expect::Either,
            );
        }
    }
}

/// Per-shard crash points under plain single-key traffic: the injected
/// power cut kills all four shards at once, and nothing any shard
/// acknowledged may be missing after the sharded reopen.
#[test]
fn per_shard_crash_points_lose_no_acknowledged_writes() {
    for point in [
        CrashPoint::MagneticWrite,
        CrashPoint::WormAppend,
        CrashPoint::WalAppend,
        CrashPoint::WalSync,
        CrashPoint::WalSyncPublish,
        CrashPoint::WalCheckpoint,
    ] {
        for skip in [0u64, 7, 40] {
            let cfg = crash_cfg();
            let dir = TempDir::new(&format!("pt-{point:?}-{skip}"));
            let db = tsb_core::TsbOptions::durable(&dir.0)
                .config(cfg.clone())
                .shards(SHARDS)
                .open()
                .unwrap();
            let injector = Arc::new(FaultInjector::new());
            db.set_fault_injector(Arc::clone(&injector));
            injector.crash_at(point, skip);

            let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
            for i in 0..160u64 {
                // Periodic checkpoints reach the magnetic / checkpoint
                // stages; a failing checkpoint is the crash.
                if i > 0 && i % 50 == 0 && db.checkpoint().is_err() {
                    break;
                }
                let value = format!("v{i}").into_bytes();
                match db.insert(Key::from_u64(i), value.clone()) {
                    Ok(_) => acked.push((i, value)),
                    Err(_) => break,
                }
            }
            drop(db);

            let recovered = tsb_core::TsbOptions::durable(&dir.0)
                .config(cfg)
                .shards(SHARDS)
                .open()
                .unwrap();
            recovered.verify().unwrap();
            for (k, value) in &acked {
                assert_eq!(
                    recovered.get_current(&Key::from_u64(*k)).unwrap().as_ref(),
                    Some(value),
                    "{point:?}/{skip}: acknowledged key {k} lost"
                );
            }
        }
    }
}

/// A healthy cross-shard commit survives a clean (no-crash) reopen whole:
/// the happy path of the same assertions the crash matrix makes.
#[test]
fn committed_cross_shard_transactions_survive_reopen_whole() {
    let cfg = crash_cfg();
    let dir = TempDir::new("clean");
    let mut committed = Vec::new();
    {
        let db = tsb_core::TsbOptions::durable(&dir.0)
            .config(cfg.clone())
            .shards(SHARDS)
            .open()
            .unwrap();
        for round in 0..6u64 {
            let keys = straddling_keys(round);
            let txn = db.begin_txn();
            for k in &keys {
                db.txn_insert(txn, Key::from_u64(*k), txn_value(round, *k))
                    .unwrap();
            }
            let ts = db.commit_txn(txn).unwrap();
            committed.push((keys, ts, round));
        }
        // No checkpoint, no clean shutdown: only the WALs speak.
    }
    let db = tsb_core::TsbOptions::durable(&dir.0)
        .config(cfg)
        .shards(SHARDS)
        .open()
        .unwrap();
    db.verify().unwrap();
    for (keys, ts, round) in &committed {
        for k in keys {
            let v = db
                .get_version_as_of(&Key::from_u64(*k), *ts)
                .unwrap()
                .expect("committed key survived");
            assert_eq!(v.state.commit_time(), Some(*ts));
            assert_eq!(v.value, Some(txn_value(*round, *k)));
        }
    }
    assert!(db.last_durable_commit().unwrap() >= committed.last().unwrap().1);
}
