//! Sharding correctness: routing stability and oracle equivalence.
//!
//! Two property families back the sharded engine:
//!
//! * **Routing is a stable pure partition** — every key maps to exactly one
//!   shard, the mapping depends on nothing but the key bytes and the shard
//!   count, and it is identical before and after a durable reopen (the
//!   manifest pins the count, the hash pins everything else).
//! * **Oracle equivalence at every pinned fence** — for arbitrary operation
//!   sequences (plain writes, deletes, and multi-key transactions that
//!   straddle shards), an `N`-shard engine answers `get` / `get_as_of` /
//!   range scans / version histories exactly like a 1-shard engine fed the
//!   same sequence *and* exactly like the in-memory oracle — with the same
//!   commit timestamps, because both engines tick the same amount from a
//!   logically identical global clock.

use proptest::prelude::*;

use tsb_common::{Key, KeyBound, KeyRange, TimeRange, Timestamp, TsbConfig};
use tsb_core::sharded::shard_of;
use tsb_core::ShardedTsb;
use tsb_workload::Oracle;

// ---------- generators -------------------------------------------------------

#[derive(Clone, Debug)]
enum ShardOp {
    /// A single-key autocommit write.
    Put { key: u8, len: u8 },
    /// A single-key logical delete.
    Delete { key: u8 },
    /// A multi-key transaction: all listed keys written atomically. With
    /// several shards the key set usually straddles them, exercising the
    /// two-phase fence; occasionally it lands on one shard or is empty.
    Txn { keys: Vec<u8>, commit: bool },
}

fn op_strategy() -> impl Strategy<Value = ShardOp> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>()).prop_map(|(key, len)| ShardOp::Put { key: key % 48, len }),
        1 => any::<u8>().prop_map(|key| ShardOp::Delete { key: key % 48 }),
        2 => (prop::collection::vec(any::<u8>(), 0..6), any::<bool>()).prop_map(
            |(mut keys, commit)| {
                for k in &mut keys {
                    *k %= 48;
                }
                keys.sort_unstable();
                keys.dedup();
                ShardOp::Txn { keys, commit }
            }
        ),
    ]
}

/// Replays `ops` into a sharded engine and the in-memory oracle, returning
/// the `(key, ts, value)` commit log. Transaction writes enter the oracle
/// only on commit, all at the commit timestamp.
fn replay(
    db: &ShardedTsb,
    oracle: &mut Oracle,
    ops: &[ShardOp],
) -> Vec<(Key, Timestamp, Option<Vec<u8>>)> {
    let mut log = Vec::new();
    for (n, op) in ops.iter().enumerate() {
        match op {
            ShardOp::Put { key, len } => {
                let value = vec![*key; (*len % 24) as usize];
                let ts = db
                    .insert(Key::from_u64(*key as u64), value.clone())
                    .unwrap();
                oracle.put(*key as u64, ts, value.clone());
                log.push((Key::from_u64(*key as u64), ts, Some(value)));
            }
            ShardOp::Delete { key } => {
                let ts = db.delete(Key::from_u64(*key as u64)).unwrap();
                oracle.delete(*key as u64, ts);
                log.push((Key::from_u64(*key as u64), ts, None));
            }
            ShardOp::Txn { keys, commit } => {
                let txn = db.begin_txn();
                for key in keys {
                    let value = vec![*key, n as u8];
                    db.txn_insert(txn, Key::from_u64(*key as u64), value)
                        .unwrap();
                }
                if *commit {
                    let ts = db.commit_txn(txn).unwrap();
                    for key in keys {
                        let value = vec![*key, n as u8];
                        oracle.put(*key as u64, ts, value.clone());
                        log.push((Key::from_u64(*key as u64), ts, Some(value)));
                    }
                } else {
                    db.abort_txn(txn).unwrap();
                }
            }
        }
    }
    log
}

fn mid_range() -> KeyRange {
    KeyRange::new(Key::from_u64(8), KeyBound::Finite(Key::from_u64(40)))
}

// ---------- routing ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The routing hash is a total function onto `0..n`, deterministic, and
    /// depends only on the key bytes — two differently-built equal keys
    /// route identically, and the assignment over a key population touches
    /// every shard.
    #[test]
    fn routing_is_a_pure_total_partition(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..120),
        n in 1usize..9,
    ) {
        for bytes in &keys {
            let key = Key::from_bytes(bytes);
            let s = shard_of(&key, n);
            prop_assert!(s < n, "route out of range: {s} >= {n}");
            prop_assert_eq!(s, shard_of(&key, n), "routing must be deterministic");
            let rebuilt = Key::from_vec(bytes.clone());
            prop_assert_eq!(s, shard_of(&rebuilt, n), "routing must depend only on bytes");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reopening a durable sharded directory preserves the partition: every
    /// key answers from the same shard, with the same value, after reopen.
    #[test]
    fn routing_is_identical_across_reopen(seed in any::<u64>()) {
        let dir = std::env::temp_dir().join(format!(
            "tsb-shard-reopen-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let shards = 1 + (seed % 4) as usize; // 1..=4, including the flat layout
        let cfg = TsbConfig::small_pages();
        let mut routes = Vec::new();
        {
            let db = tsb_core::TsbOptions::durable(&dir).config(cfg.clone()).shards(shards).open().unwrap();
            for i in 0..64u64 {
                let key = Key::from_u64(seed.wrapping_add(i));
                db.insert(key.clone(), vec![i as u8]).unwrap();
                routes.push((key.clone(), db.shard_of(&key), vec![i as u8]));
            }
        }
        let db = tsb_core::TsbOptions::durable(&dir).config(cfg).shards(shards).open().unwrap();
        for (key, shard, value) in &routes {
            prop_assert_eq!(db.shard_of(key), *shard, "partition moved across reopen");
            // The value is found — which it could not be if the key were
            // now routed to a shard that never stored it.
            prop_assert_eq!(db.get_current(key).unwrap(), Some(value.clone()));
        }
        // A contradictory shard count is rejected, not silently re-partitioned.
        let wrong = if shards == 4 { 2 } else { shards + 1 };
        prop_assert!(tsb_core::TsbOptions::durable(&dir).config(TsbConfig::small_pages()).shards(wrong).open().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------- oracle equivalence -----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An `N`-shard engine fed an arbitrary op sequence answers every query
    /// exactly like a 1-shard engine fed the same sequence and exactly like
    /// the in-memory oracle — same commit timestamps, same values, same
    /// histories, at every recorded commit time and at the pinned snapshot
    /// fence.
    #[test]
    fn sharded_matches_single_shard_and_oracle(
        ops in prop::collection::vec(op_strategy(), 1..150),
        n in 2usize..5,
    ) {
        let cfg = TsbConfig::small_pages();
        let sharded = tsb_core::TsbOptions::in_memory().config(cfg.clone()).shards(n).open().unwrap();
        let single = tsb_core::TsbOptions::in_memory().config(cfg).shards(1).open().unwrap();
        let mut oracle = Oracle::new();
        let mut shadow = Oracle::new();

        let log = replay(&sharded, &mut oracle, &ops);
        let single_log = replay(&single, &mut shadow, &ops);

        // Same sequence → same global commit timestamps, shard count be damned.
        prop_assert_eq!(&log, &single_log, "commit logs diverged between 1 and {} shards", n);
        prop_assert_eq!(sharded.now(), single.now());

        sharded.verify().unwrap();

        // Point reads at every recorded commit time.
        for (key, ts, value) in &log {
            prop_assert_eq!(&sharded.get_as_of(key, *ts).unwrap(), value);
            prop_assert_eq!(
                sharded.get_as_of(key, *ts).unwrap(),
                single.get_as_of(key, *ts).unwrap()
            );
        }

        // Current reads and full version histories for every key ever written.
        for key in oracle.keys() {
            prop_assert_eq!(sharded.get_current(key).unwrap(), oracle.get_current(key));
            let got: Vec<(Timestamp, Option<Vec<u8>>)> = sharded
                .versions(key).unwrap()
                .into_iter()
                .map(|v| (v.state.commit_time().unwrap(), v.value))
                .collect();
            prop_assert_eq!(got, oracle.versions(key), "history mismatch for {:?}", key);
            prop_assert_eq!(
                sharded.history_between(key, TimeRange::full()).unwrap(),
                single.history_between(key, TimeRange::full()).unwrap()
            );
        }

        // Range scans: full and partial, at the fence, a midpoint, and now.
        let fence = sharded.begin_snapshot();
        let single_fence = single.begin_snapshot();
        prop_assert_eq!(fence.timestamp(), single_fence.timestamp());
        prop_assert_eq!(fence.dump().unwrap(), oracle.snapshot_at(fence.timestamp()));
        prop_assert_eq!(fence.dump().unwrap(), single_fence.dump().unwrap());

        let mut probes = vec![fence.timestamp(), sharded.now()];
        if let Some((_, mid_ts, _)) = log.get(log.len() / 2) {
            probes.push(*mid_ts);
        }
        let range = mid_range();
        for ts in probes {
            prop_assert_eq!(sharded.scan_as_of(&KeyRange::full(), ts).unwrap(), oracle.snapshot_at(ts));
            prop_assert_eq!(sharded.scan_as_of(&range, ts).unwrap(), oracle.scan_as_of(&range, ts));
            prop_assert_eq!(
                sharded.scan_as_of(&range, ts).unwrap(),
                single.scan_as_of(&range, ts).unwrap()
            );
            prop_assert_eq!(sharded.count_as_of(&KeyRange::full(), ts).unwrap(), oracle.count_as_of(&KeyRange::full(), ts));
        }
    }
}

// ---------- directed edges ---------------------------------------------------

/// The merged scan respects key order even when adjacent keys live on
/// different shards (interleaved routing is the common case, not the edge).
#[test]
fn merged_scans_interleave_shards_in_key_order() {
    let db = tsb_core::TsbOptions::in_memory()
        .config(TsbConfig::small_pages())
        .shards(4)
        .open()
        .unwrap();
    for i in 0..200u64 {
        db.insert(Key::from_u64(i), vec![i as u8]).unwrap();
    }
    let rows = db.scan_current(&KeyRange::full()).unwrap();
    assert_eq!(rows.len(), 200);
    assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    // Adjacent keys land on different shards somewhere in the population —
    // otherwise this test exercises nothing.
    assert!(
        (0..199u64).any(|i| db.shard_of(&Key::from_u64(i)) != db.shard_of(&Key::from_u64(i + 1))),
        "workload never crossed a shard boundary"
    );
}

/// A snapshot pinned at the fence never mixes shard states across it: a
/// cross-shard transaction committed after the pin is invisible on every
/// shard, and one committed before is visible on every shard.
#[test]
fn pinned_fence_is_atomic_with_respect_to_cross_shard_commits() {
    let db = tsb_core::TsbOptions::in_memory()
        .config(TsbConfig::small_pages())
        .shards(4)
        .open()
        .unwrap();
    let before = db.begin_txn();
    for i in 0..32u64 {
        db.txn_insert(before, Key::from_u64(i), b"before".to_vec())
            .unwrap();
    }
    db.commit_txn(before).unwrap();

    let snap = db.begin_snapshot();

    let after = db.begin_txn();
    for i in 0..32u64 {
        db.txn_insert(after, Key::from_u64(i), b"after".to_vec())
            .unwrap();
    }
    db.commit_txn(after).unwrap();

    let rows = snap.dump().unwrap();
    assert_eq!(rows.len(), 32);
    for (key, value) in rows {
        assert_eq!(
            value,
            b"before".to_vec(),
            "snapshot mixed fences at {key:?}"
        );
    }
    // A fresh snapshot sees the post-pin commit on every shard at once.
    let fresh = db.begin_snapshot();
    for (_, value) in fresh.dump().unwrap() {
        assert_eq!(value, b"after".to_vec());
    }
}
