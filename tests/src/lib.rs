//! Shared helpers for the cross-crate integration and property tests.
//!
//! The central helper is [`replay`]: it applies the same operation stream to
//! a TSB-tree, the WOBT baseline, and the in-memory [`Oracle`], so tests can
//! demand that every structure answers every temporal query identically.

#![forbid(unsafe_code)]

use tsb_common::Timestamp;
use tsb_core::TsbTree;
use tsb_wobt::Wobt;
use tsb_workload::{Op, Oracle};

/// The commit log produced by replaying a workload: `(key, timestamp,
/// value-or-tombstone)` in commit order.
pub type CommitLog = Vec<(tsb_common::Key, Timestamp, Option<Vec<u8>>)>;

/// Replays `ops` into the tree and the oracle, returning the commit log.
pub fn replay(tree: &mut TsbTree, oracle: &mut Oracle, ops: &[Op]) -> CommitLog {
    let mut log = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::Put { key, value } => {
                let ts = tree.insert(key.clone(), value.clone()).expect("insert");
                oracle.put(key.clone(), ts, value.clone());
                log.push((key.clone(), ts, Some(value.clone())));
            }
            Op::Delete { key } => {
                let ts = tree.delete(key.clone()).expect("delete");
                oracle.delete(key.clone(), ts);
                log.push((key.clone(), ts, None));
            }
        }
    }
    log
}

/// Replays a commit log (produced by [`replay`]) into a WOBT at the same
/// timestamps, so the two structures hold identical logical content.
pub fn replay_into_wobt(wobt: &mut Wobt, log: &CommitLog) {
    for (key, ts, value) in log {
        match value {
            Some(v) => wobt
                .insert_at(key.clone(), v.clone(), *ts)
                .expect("wobt insert"),
            None => {
                // The WOBT has no explicit timestamped delete helper; replay
                // deletes as tombstones at the next tick, which the
                // comparisons account for by querying at recorded times only.
                wobt.delete(key.clone()).expect("wobt delete");
            }
        }
    }
}

/// Asserts that the tree and the oracle agree on every query class at a
/// sample of timestamps drawn from the commit log.
pub fn assert_tree_matches_oracle(tree: &TsbTree, oracle: &Oracle, log: &CommitLog) {
    use tsb_common::KeyRange;

    // Every recorded version is readable as of its own commit time.
    for (key, ts, value) in log {
        let got = tree.get_as_of(key, *ts).expect("as-of read");
        assert_eq!(&got, value, "key {key} as of {ts}");
    }
    // Current reads match for every key ever touched.
    for key in oracle.keys() {
        assert_eq!(
            tree.get_current(key).expect("current read"),
            oracle.get_current(key),
            "current value of {key}"
        );
        let tree_versions: Vec<Timestamp> = tree
            .versions(key)
            .expect("versions")
            .iter()
            .map(|v| v.commit_time().unwrap())
            .collect();
        let oracle_versions: Vec<Timestamp> =
            oracle.versions(key).iter().map(|(t, _)| *t).collect();
        assert_eq!(tree_versions, oracle_versions, "history of {key}");
    }
    // Snapshots agree at a spread of past times.
    let times = oracle.all_timestamps();
    for idx in [0, times.len() / 4, times.len() / 2, times.len() - 1] {
        let ts = times[idx.min(times.len() - 1)];
        assert_eq!(
            tree.snapshot_at(ts).expect("snapshot"),
            oracle.snapshot_at(ts),
            "snapshot at {ts}"
        );
    }
    // A few range scans agree.
    let keys: Vec<_> = oracle.keys().cloned().collect();
    if keys.len() >= 4 {
        let lo = keys[keys.len() / 4].clone();
        let hi = keys[3 * keys.len() / 4].clone();
        let range = KeyRange::new(lo, tsb_common::KeyBound::Finite(hi));
        let ts = times[times.len() / 2];
        assert_eq!(
            tree.scan_as_of(&range, ts).expect("range scan"),
            oracle.scan_as_of(&range, ts),
            "range scan at {ts}"
        );
    }
}

/// Asserts that the WOBT agrees with the oracle on as-of point reads at the
/// recorded commit times and on current reads.
pub fn assert_wobt_matches_oracle(wobt: &Wobt, oracle: &Oracle, log: &CommitLog) {
    for (key, ts, value) in log {
        if value.is_none() {
            // Tombstones were replayed at a shifted timestamp; skip the exact
            // point check but still verify via current reads below.
            continue;
        }
        assert_eq!(
            &wobt.get_as_of(key, *ts).expect("wobt as-of"),
            value,
            "WOBT: key {key} as of {ts}"
        );
    }
    for key in oracle.keys() {
        assert_eq!(
            wobt.get_current(key).expect("wobt current"),
            oracle.get_current(key),
            "WOBT current value of {key}"
        );
    }
}
