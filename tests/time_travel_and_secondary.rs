//! Cross-crate tests for the rectangle (key × time) query surface and for
//! keeping a secondary index (§3.6) consistent with its primary tree under a
//! realistic workload.

use std::collections::BTreeSet;

use tsb_common::{Key, KeyRange, SplitPolicyKind, TimeRange, Timestamp, TsbConfig};
use tsb_core::SecondaryIndex;
use tsb_workload::{generate_ops, Op, Oracle, WorkloadSpec};

fn cfg(policy: SplitPolicyKind) -> TsbConfig {
    TsbConfig::small_pages().with_split_policy(policy)
}

/// Oracle-side equivalent of `scan_versions`: every `(key, ts, value)` whose
/// key is in `keys` and whose commit time is in `window`.
fn oracle_versions_in(
    oracle: &Oracle,
    keys: &KeyRange,
    window: &TimeRange,
) -> Vec<(Key, Timestamp)> {
    let mut out = Vec::new();
    for key in oracle.keys() {
        if !keys.contains(key) {
            continue;
        }
        for (ts, _) in oracle.versions(key) {
            if window.contains(ts) {
                out.push((key.clone(), ts));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn rectangle_queries_match_the_oracle_under_every_policy() {
    let spec = WorkloadSpec::default()
        .with_ops(900)
        .with_keys(90)
        .with_update_ratio(4.0)
        .with_value_size(24);
    let ops = generate_ops(&spec);

    for policy in [
        SplitPolicyKind::TimePreferring,
        SplitPolicyKind::KeyPreferring,
        SplitPolicyKind::Threshold {
            key_split_live_fraction: 0.6,
        },
    ] {
        let mut tree = tsb_core::TsbOptions::in_memory()
            .config(cfg(policy))
            .open_tree()
            .unwrap();
        let mut oracle = Oracle::new();
        for op in &ops {
            match op {
                Op::Put { key, value } => {
                    let ts = tree.insert(key.clone(), value.clone()).unwrap();
                    oracle.put(key.clone(), ts, value.clone());
                }
                Op::Delete { key } => {
                    let ts = tree.delete(key.clone()).unwrap();
                    oracle.delete(key.clone(), ts);
                }
            }
        }
        tree.verify().unwrap();

        let times = oracle.all_timestamps();
        let quarter = times[times.len() / 4];
        let three_quarters = times[3 * times.len() / 4];
        let windows = [
            TimeRange::bounded(quarter, three_quarters),
            TimeRange::from(three_quarters),
            TimeRange::bounded(Timestamp(1), quarter),
        ];
        let ranges = [
            KeyRange::full(),
            KeyRange::bounded(Key::from_u64(10), Key::from_u64(40)),
        ];
        for window in &windows {
            for range in &ranges {
                let got: Vec<(Key, Timestamp)> = tree
                    .scan_versions(range, *window)
                    .unwrap()
                    .into_iter()
                    .map(|v| (v.key.clone(), v.commit_time().unwrap()))
                    .collect();
                let expected = oracle_versions_in(&oracle, range, window);
                assert_eq!(got, expected, "{policy:?}, window {window}, range {range}");
            }
        }

        // history_between agrees with the filtered full history for a sample
        // of keys.
        for key in oracle.keys().take(10) {
            let window = TimeRange::bounded(quarter, three_quarters);
            let got: Vec<Timestamp> = tree
                .history_between(key, window)
                .unwrap()
                .iter()
                .map(|v| v.commit_time().unwrap())
                .collect();
            let expected: Vec<Timestamp> = oracle
                .versions(key)
                .into_iter()
                .map(|(t, _)| t)
                .filter(|t| window.contains(*t))
                .collect();
            assert_eq!(got, expected, "history_between for {key}");
        }

        // changed_keys_between equals the distinct keys of the oracle's
        // versions in the window.
        let window = TimeRange::from(three_quarters);
        let got: BTreeSet<Key> = tree
            .changed_keys_between(&KeyRange::full(), window)
            .unwrap()
            .into_iter()
            .collect();
        let expected: BTreeSet<Key> = oracle_versions_in(&oracle, &KeyRange::full(), &window)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, expected);
    }
}

#[test]
fn secondary_index_stays_consistent_with_its_primary_under_churn() {
    // Employees (primary) carry a department (secondary attribute). Every
    // primary change is mirrored into the secondary index with the same
    // timestamp, as §3.6 prescribes. At any past time, grouping the primary
    // snapshot by department must equal the secondary index's answer.
    let mut people = tsb_core::TsbOptions::in_memory()
        .config(cfg(SplitPolicyKind::default()))
        .open_tree()
        .unwrap();
    let mut by_dept = SecondaryIndex::new_in_memory(cfg(SplitPolicyKind::TimePreferring)).unwrap();
    let depts = ["eng", "sales", "ops", "hr"];
    let dept_of = |employee: u64, generation: u64| depts[((employee + generation) % 4) as usize];

    let mut checkpoints: Vec<Timestamp> = Vec::new();
    let mut generation_of: Vec<u64> = vec![0; 120];
    // Hire everyone.
    for emp in 0..120u64 {
        let dept = dept_of(emp, 0);
        let ts = people
            .insert(Key::from_u64(emp), format!("dept={dept}").into_bytes())
            .unwrap();
        by_dept
            .insert_entry(&Key::from(dept), &Key::from_u64(emp), ts)
            .unwrap();
    }
    checkpoints.push(people.now().prev());
    // Three waves of transfers.
    for wave in 1..=3u64 {
        for emp in (0..120u64).filter(|e| e % (wave + 1) == 0) {
            let old_gen = generation_of[emp as usize];
            let old_dept = dept_of(emp, old_gen);
            let new_gen = old_gen + 1;
            let new_dept = dept_of(emp, new_gen);
            let ts = people
                .insert(Key::from_u64(emp), format!("dept={new_dept}").into_bytes())
                .unwrap();
            by_dept
                .record_change(
                    Some(&Key::from(old_dept)),
                    Some(&Key::from(new_dept)),
                    &Key::from_u64(emp),
                    ts,
                )
                .unwrap();
            generation_of[emp as usize] = new_gen;
        }
        checkpoints.push(people.now().prev());
    }
    people.verify().unwrap();
    by_dept.tree().verify().unwrap();

    // At every checkpoint, the secondary index agrees with a group-by over
    // the primary snapshot.
    for ts in checkpoints {
        let snapshot = people.snapshot_at(ts).unwrap();
        for dept in depts {
            let expected: BTreeSet<Key> = snapshot
                .iter()
                .filter(|(_, v)| v == format!("dept={dept}").as_bytes())
                .map(|(k, _)| k.clone())
                .collect();
            let got: BTreeSet<Key> = by_dept
                .primaries_as_of(&Key::from(dept), ts)
                .unwrap()
                .into_iter()
                .collect();
            assert_eq!(got, expected, "dept {dept} at {ts}");
            assert_eq!(
                by_dept.count_as_of(&Key::from(dept), ts).unwrap(),
                expected.len()
            );
        }
    }
}
