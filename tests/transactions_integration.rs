//! Transaction semantics (§4) exercised across splits, migrations, and
//! concurrent read-only snapshots, against the oracle.

use tsb_common::{Key, KeyRange, SplitPolicyKind, Timestamp, TsbConfig};
use tsb_core::TsbTree;
use tsb_workload::Oracle;

fn tree(policy: SplitPolicyKind) -> TsbTree {
    tsb_core::TsbOptions::in_memory()
        .config(TsbConfig::small_pages().with_split_policy(policy))
        .open_tree()
        .unwrap()
}

#[test]
fn interleaved_transactions_with_aborts_match_the_oracle() {
    let mut t = tree(SplitPolicyKind::TimePreferring);
    let mut oracle = Oracle::new();

    // Deterministic interleaving: every 3rd transaction aborts.
    for round in 0..100u64 {
        let txn = t.begin_txn();
        let keys: Vec<u64> = (0..4).map(|i| (round * 3 + i) % 25).collect();
        for &k in &keys {
            t.txn_insert(txn, k, format!("r{round}-k{k}").into_bytes())
                .unwrap();
        }
        if round % 3 == 2 {
            t.abort_txn(txn).unwrap();
        } else {
            let ts = t.commit_txn(txn).unwrap();
            for &k in &keys {
                oracle.put(k, ts, format!("r{round}-k{k}").into_bytes());
            }
        }
    }
    t.verify().unwrap();

    // Current values match (aborted rounds never became visible).
    for k in 0..25u64 {
        assert_eq!(
            t.get_current(&Key::from_u64(k)).unwrap(),
            oracle.get_current(&Key::from_u64(k)),
            "key {k}"
        );
    }
    // All committed versions are present, no aborted version leaked.
    for k in oracle.keys() {
        let got: Vec<Timestamp> = t
            .versions(k)
            .unwrap()
            .iter()
            .map(|v| v.commit_time().unwrap())
            .collect();
        let expected: Vec<Timestamp> = oracle.versions(k).iter().map(|(ts, _)| *ts).collect();
        assert_eq!(got, expected, "history of {k}");
    }
    // Snapshots agree at several past times.
    for ts in oracle.all_timestamps().iter().step_by(7) {
        assert_eq!(t.snapshot_at(*ts).unwrap(), oracle.snapshot_at(*ts));
    }
    assert_eq!(t.active_txn_count(), 0);
}

#[test]
fn atomicity_all_of_a_transactions_writes_share_one_timestamp() {
    let mut t = tree(SplitPolicyKind::default());
    // Fill the tree so commits land in different leaves.
    for i in 0..200u64 {
        t.insert(i, b"seed".to_vec()).unwrap();
    }
    let txn = t.begin_txn();
    let touched: Vec<u64> = vec![3, 77, 150, 199];
    for &k in &touched {
        t.txn_insert(txn, k, b"multi-leaf commit".to_vec()).unwrap();
    }
    let commit_ts = t.commit_txn(txn).unwrap();
    for &k in &touched {
        let version = t
            .get_version_as_of(&Key::from_u64(k), commit_ts)
            .unwrap()
            .unwrap();
        assert_eq!(version.commit_time(), Some(commit_ts));
        assert_eq!(version.value, Some(b"multi-leaf commit".to_vec()));
        // Just before the commit timestamp, the old value is still visible.
        assert_eq!(
            t.get_as_of(&Key::from_u64(k), commit_ts.prev())
                .unwrap()
                .unwrap(),
            b"seed".to_vec()
        );
    }
    t.verify().unwrap();
}

#[test]
fn snapshot_backup_is_unaffected_by_later_commits_and_in_flight_writers() {
    let mut t = tree(SplitPolicyKind::TimePreferring);
    for i in 0..100u64 {
        t.insert(i, b"v1".to_vec()).unwrap();
    }
    // An in-flight writer exists when the backup begins.
    let writer = t.begin_txn();
    t.txn_insert(writer, 500u64, b"uncommitted at backup time".to_vec())
        .unwrap();

    let backup_ts = t.begin_snapshot().timestamp();

    // Lots of later activity, including the in-flight writer committing and
    // enough churn to force splits and migration.
    for round in 0..5u64 {
        for i in 0..100u64 {
            t.insert(i, format!("v2-round{round}").into_bytes())
                .unwrap();
        }
    }
    t.commit_txn(writer).unwrap();

    let backup = t.snapshot_as_of(backup_ts).dump().unwrap();
    assert_eq!(backup.len(), 100);
    assert!(backup.iter().all(|(_, v)| v == b"v1"));
    assert!(!backup.iter().any(|(k, _)| k.as_u64() == Some(500)));

    // The backup scan interface agrees with point reads at the same time.
    let range = KeyRange::bounded(Key::from_u64(10), Key::from_u64(20));
    let scanned = t.snapshot_as_of(backup_ts).scan(&range).unwrap();
    assert_eq!(scanned.len(), 10);
    for (k, val) in scanned {
        assert_eq!(t.get_as_of(&k, backup_ts).unwrap().unwrap(), val);
    }
    t.verify().unwrap();
}

#[test]
fn write_conflicts_resolve_after_commit_or_abort() {
    let mut t = tree(SplitPolicyKind::default());
    let a = t.begin_txn();
    let b = t.begin_txn();
    t.txn_insert(a, 1u64, b"a".to_vec()).unwrap();
    assert!(t.txn_insert(b, 1u64, b"b".to_vec()).is_err());
    t.abort_txn(a).unwrap();
    // After the abort, b can write and commit the key.
    t.txn_insert(b, 1u64, b"b".to_vec()).unwrap();
    t.commit_txn(b).unwrap();
    assert_eq!(
        t.get_current(&Key::from_u64(1)).unwrap().unwrap(),
        b"b".to_vec()
    );

    // Single-shot writes (auto-commit) conflict with in-flight transactions
    // only through the uncommitted-version check; they are independent here.
    let c = t.begin_txn();
    t.txn_delete(c, 1u64).unwrap();
    t.commit_txn(c).unwrap();
    assert!(t.get_current(&Key::from_u64(1)).unwrap().is_none());
    t.verify().unwrap();
}
